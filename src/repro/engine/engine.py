"""The multi-task serving engine: request intake, micro-batching, scheduling.

A :class:`MultiTaskEngine` wraps a compiled :class:`~repro.engine.plan.EnginePlan`
and accepts ``(task, image)`` requests from any mix of tasks.  Requests are
grouped into per-task micro-batches and executed under a pluggable
:class:`~repro.engine.scheduling.SchedulingPolicy`:

* ``"singular"`` — all requests of one task are drained before the next task
  starts (Singular task mode: task switches are rare, parameter reloads
  amortise over the whole per-task queue);
* ``"pipelined"`` — micro-batches round-robin across the active tasks
  (Pipelined task mode: consecutive batches belong to different tasks, the
  scenario where MIME's O(1) threshold-only switch pays off most);
* ``"fifo-deadline"`` / ``"weighted-fair"`` — arrival/deadline- and
  share-ordered policies shared with the online
  :class:`~repro.serving.ServingRuntime`.

Results always come back in submission order regardless of the execution
order, and every run records achieved per-layer sparsity into a
:class:`~repro.engine.stats.SparsityRecorder` so the hardware simulator can be
driven by measured numbers (:meth:`MultiTaskEngine.hardware_report`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.plan import EnginePlan, RunContext
from repro.engine.scheduling import (
    SCHEDULING_MODES,
    InferenceRequest,
    SchedulingPolicy,
    chunk_requests,
    get_policy,
)
from repro.engine.stats import SparsityRecorder
from repro.hardware.scenario import ExecutionConfig, mime_config
from repro.hardware.simulator import BatchResult, SystolicArraySimulator
from repro.models.shapes import LayerShape
from repro.utils.ratios import fraction_saved

__all__ = [
    "SCHEDULING_MODES",
    "EngineRunStats",
    "InferenceRequest",
    "MultiTaskEngine",
    "recorder_hardware_report",
]


@dataclass
class EngineRunStats:
    """Operational counters for one :meth:`MultiTaskEngine.process` call."""

    mode: str
    num_images: int = 0
    num_batches: int = 0
    task_switches: int = 0
    batch_tasks: List[str] = field(default_factory=list)
    #: MACs an unspecialized dense plan would have executed for these images.
    dense_macs: int = 0
    #: MACs actually executed (after plan specialization and/or the dynamic
    #: sparse fast path).  Equal to :attr:`dense_macs` on a plain dense run.
    effective_macs: int = 0
    #: Batches served by a per-task specialized plan.
    specialized_batches: int = 0
    #: GEMM invocations that took the dynamic row-gather fast path.
    dynamic_gemms: int = 0

    def mac_reduction(self) -> float:
        """Fraction of dense MACs avoided (0.0 when nothing was saved)."""
        return fraction_saved(self.dense_macs, self.effective_macs)

    def summary(self) -> str:
        """One line suitable for logs and the CLI."""
        mean = self.num_images / self.num_batches if self.num_batches else 0.0
        line = (
            f"[{self.mode}] {self.num_images} images in {self.num_batches} "
            f"micro-batches (mean size {mean:.1f}), {self.task_switches} task switches"
        )
        if self.dense_macs:
            line += (
                f", effective MACs {self.effective_macs:,} / {self.dense_macs:,} dense "
                f"({100.0 * self.mac_reduction():.1f}% saved)"
            )
        return line


def recorder_hardware_report(
    recorder: SparsityRecorder,
    shapes: Sequence[LayerShape],
    config: ExecutionConfig | None = None,
    simulator: SystolicArraySimulator | None = None,
    conv_only: bool = False,
    default_sparsity: float = 0.0,
) -> BatchResult:
    """Drive the systolic-array simulator with a recorder's *measured* run.

    Uses the recorded processing order as the schedule and the measured
    sparsity as the profile, so the energy/cycle estimate reflects what was
    actually executed rather than a static table.  Shared by the offline
    engine and the online serving runtime.
    """
    schedule = recorder.schedule()
    if not schedule:
        raise RuntimeError("no requests processed yet; nothing to simulate")
    simulator = simulator if simulator is not None else SystolicArraySimulator()
    config = config if config is not None else mime_config()
    result = simulator.run(
        shapes,
        schedule,
        recorder.to_profile(default_sparsity=default_sparsity),
        config,
        conv_only=conv_only,
    )
    # Surface the engine's *software* MAC counts next to the analytical model:
    # the simulator estimates what the accelerator would skip, the recorder
    # reports what the CPU engine actually executed after specialization and
    # the dynamic fast path.
    result.measured_dense_macs, result.measured_effective_macs = recorder.mac_totals()
    return result


class MultiTaskEngine:
    """Micro-batching multi-task scheduler over a compiled engine plan.

    The :attr:`recorder` accumulates over the engine's **whole lifetime**:
    every :meth:`process`/:meth:`run_pending` call appends to the same
    measured schedule and sparsity totals, and :meth:`hardware_report`
    therefore simulates everything served since construction (or since the
    last :meth:`reset_stats`).  Pass ``fresh_stats=True`` to a run to reset
    the window first when you want per-run numbers.
    """

    def __init__(
        self,
        plan: EnginePlan,
        micro_batch: int = 8,
        specialized: Optional[Dict[str, EnginePlan]] = None,
    ) -> None:
        if micro_batch <= 0:
            raise ValueError("micro_batch must be positive")
        self.plan = plan
        self.micro_batch = micro_batch
        #: Per-task specialized plans (see :func:`repro.engine.specialize.
        #: specialize_tasks`); batches of a listed task execute its compacted
        #: plan, everything else falls back to the shared dense plan.
        self.specialized: Dict[str, EnginePlan] = dict(specialized) if specialized else {}
        for name in self.specialized:
            if name not in plan.tasks:
                raise KeyError(f"specialized plan for unknown task '{name}'")
        self.recorder = SparsityRecorder()
        #: Task of the last batch executed by this engine, across process()
        #: calls, so task-switch accounting spans drains.
        self.last_task: Optional[str] = None
        self._queue: List[InferenceRequest] = []
        self._submitted = 0

    def plan_for(self, task: str) -> EnginePlan:
        """The plan a batch of ``task`` executes (specialized when available)."""
        return self.specialized.get(task, self.plan)

    def specialize(
        self,
        profile=None,
        tasks: Optional[Sequence[str]] = None,
        dead_threshold: float = 0.0,
        compact_reduction: bool = True,
        calibration_batch: int = 32,
        calibration_seed: int = 0,
    ) -> Dict[str, EnginePlan]:
        """Calibrate (when no ``profile`` is given) and install per-task plans.

        Convenience wrapper over :func:`repro.engine.specialize.specialize_tasks`;
        the installed mapping is also returned for inspection.
        """
        from repro.engine.specialize import specialize_tasks

        self.specialized.update(
            specialize_tasks(
                self.plan,
                profile=profile,
                tasks=tasks,
                dead_threshold=dead_threshold,
                compact_reduction=compact_reduction,
                calibration_batch=calibration_batch,
                calibration_seed=calibration_seed,
            )
        )
        return self.specialized

    # ---------------------------------------------------------------- intake --
    def submit(
        self, task: str, images: np.ndarray, deadline: Optional[float] = None
    ) -> List[int]:
        """Enqueue one image ``(C, H, W)`` or a stack ``(N, C, H, W)``.

        Returns the request indices, which identify each image's slot in the
        output of the next :meth:`run_pending` call.  ``deadline`` (a
        ``time.monotonic()`` timestamp) is only consulted by deadline-aware
        scheduling policies.
        """
        if task not in self.plan.tasks:
            raise KeyError(f"unknown task '{task}'; compiled: {self.plan.task_names()}")
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None, ...]
        if images.ndim != 4 or images.shape[1:] != self.plan.input_shape:
            raise ValueError(
                f"expected images of per-sample shape {self.plan.input_shape}, "
                f"got {images.shape}"
            )
        arrival = time.monotonic()
        indices = []
        for image in images:
            # Copy at enqueue time so callers may reuse their staging buffer
            # between submit() and run_pending().
            self._queue.append(
                InferenceRequest(self._submitted, task, image.copy(), arrival, deadline)
            )
            indices.append(self._submitted)
            self._submitted += 1
        return indices

    def pending(self) -> int:
        return len(self._queue)

    def run_pending(
        self, mode: str | SchedulingPolicy = "pipelined", fresh_stats: bool = False
    ) -> Tuple[List[np.ndarray], EngineRunStats]:
        """Drain the queue; returns per-request logits in submission order."""
        requests, self._queue = self._queue, []
        return self.process(requests, mode=mode, fresh_stats=fresh_stats)

    def reset_stats(self) -> None:
        """Start a fresh measurement window: clear the recorder and last task."""
        self.recorder.reset()
        self.last_task = None

    # ------------------------------------------------------------- execution --
    def process(
        self,
        requests: Sequence[InferenceRequest],
        mode: str | SchedulingPolicy = "pipelined",
        fresh_stats: bool = False,
    ) -> Tuple[List[np.ndarray], EngineRunStats]:
        """Execute ``requests`` under the ``mode`` scheduling policy.

        The returned list is aligned with ``requests`` (first-submitted first),
        each entry a ``(num_classes,)`` logits vector.  ``fresh_stats=True``
        resets the recorder (and :attr:`last_task`) before executing, so the
        subsequent :meth:`hardware_report` covers exactly this run.
        """
        policy = get_policy(mode)
        if fresh_stats:
            self.reset_stats()
        stats = EngineRunStats(mode=policy.name)
        position = {request.index: slot for slot, request in enumerate(requests)}
        outputs: List[Optional[np.ndarray]] = [None] * len(requests)
        previous_task = self.last_task
        for batch in policy.order(chunk_requests(requests, self.micro_batch)):
            images = np.stack([request.image for request in batch.requests])
            plan = self.plan_for(batch.task)
            # Specialized plans snapshot the dense plan's dynamic config at
            # build time; falling back here lets enable_dynamic_sparse /
            # autotune on the dense plan take effect in either order.
            ctx = RunContext(plan.dynamic if plan.dynamic is not None else self.plan.dynamic)
            logits = plan.run(images, batch.task, recorder=self.recorder, ctx=ctx)
            self.recorder.record_pass(batch.task, len(batch))
            self.recorder.record_macs(ctx.dense_macs, ctx.effective_macs)
            for request, row in zip(batch.requests, logits):
                outputs[position[request.index]] = row
            stats.num_images += len(batch)
            stats.num_batches += 1
            stats.batch_tasks.append(batch.task)
            stats.dense_macs += ctx.dense_macs
            stats.effective_macs += ctx.effective_macs
            stats.dynamic_gemms += ctx.dynamic_gemms
            if plan is not self.plan:
                stats.specialized_batches += 1
            if previous_task is not None and previous_task != batch.task:
                stats.task_switches += 1
            previous_task = batch.task
        self.last_task = previous_task
        assert all(output is not None for output in outputs), "scheduler dropped a request"
        return outputs, stats

    # --------------------------------------------------------- hardware glue --
    def sparsity_profile(self, default_sparsity: float = 0.0):
        """Measured per-task, per-layer sparsity as a simulator-ready profile."""
        return self.recorder.to_profile(default_sparsity=default_sparsity)

    def hardware_report(
        self,
        shapes: Sequence[LayerShape],
        config: ExecutionConfig | None = None,
        simulator: SystolicArraySimulator | None = None,
        conv_only: bool = False,
    ) -> BatchResult:
        """Drive the systolic-array simulator with this engine's *measured* run.

        The schedule and sparsity cover the recorder's whole lifetime — every
        request processed since construction or the last
        :meth:`reset_stats`/``fresh_stats=True`` run — not just the most
        recent :meth:`process` call.
        """
        return recorder_hardware_report(
            self.recorder, shapes, config=config, simulator=simulator, conv_only=conv_only
        )
