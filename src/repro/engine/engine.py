"""The multi-task serving engine: request intake, micro-batching, scheduling.

A :class:`MultiTaskEngine` wraps a compiled :class:`~repro.engine.plan.EnginePlan`
and accepts ``(task, image)`` requests from any mix of tasks.  Requests are
grouped into per-task micro-batches and executed in one of the paper's two
hardware scenarios:

* ``"singular"`` — all requests of one task are drained before the next task
  starts (Singular task mode: task switches are rare, parameter reloads
  amortise over the whole per-task queue);
* ``"pipelined"`` — micro-batches round-robin across the active tasks
  (Pipelined task mode: consecutive batches belong to different tasks, the
  scenario where MIME's O(1) threshold-only switch pays off most).

Results always come back in submission order regardless of the execution
order, and every run records achieved per-layer sparsity into a
:class:`~repro.engine.stats.SparsityRecorder` so the hardware simulator can be
driven by measured numbers (:meth:`MultiTaskEngine.hardware_report`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.plan import EnginePlan
from repro.engine.stats import SparsityRecorder
from repro.hardware.scenario import ExecutionConfig, mime_config
from repro.hardware.simulator import BatchResult, SystolicArraySimulator
from repro.models.shapes import LayerShape

SCHEDULING_MODES = ("singular", "pipelined")


@dataclass(frozen=True)
class InferenceRequest:
    """One image of one task, tagged with its submission index."""

    index: int
    task: str
    image: np.ndarray


@dataclass
class EngineRunStats:
    """Operational counters for one :meth:`MultiTaskEngine.process` call."""

    mode: str
    num_images: int = 0
    num_batches: int = 0
    task_switches: int = 0
    batch_tasks: List[str] = field(default_factory=list)


class MultiTaskEngine:
    """Micro-batching multi-task scheduler over a compiled engine plan."""

    def __init__(self, plan: EnginePlan, micro_batch: int = 8) -> None:
        if micro_batch <= 0:
            raise ValueError("micro_batch must be positive")
        self.plan = plan
        self.micro_batch = micro_batch
        self.recorder = SparsityRecorder()
        self._queue: List[InferenceRequest] = []
        self._submitted = 0

    # ---------------------------------------------------------------- intake --
    def submit(self, task: str, images: np.ndarray) -> List[int]:
        """Enqueue one image ``(C, H, W)`` or a stack ``(N, C, H, W)``.

        Returns the request indices, which identify each image's slot in the
        output of the next :meth:`run_pending` call.
        """
        if task not in self.plan.tasks:
            raise KeyError(f"unknown task '{task}'; compiled: {self.plan.task_names()}")
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None, ...]
        if images.ndim != 4 or images.shape[1:] != self.plan.input_shape:
            raise ValueError(
                f"expected images of per-sample shape {self.plan.input_shape}, "
                f"got {images.shape}"
            )
        indices = []
        for image in images:
            # Copy at enqueue time so callers may reuse their staging buffer
            # between submit() and run_pending().
            self._queue.append(InferenceRequest(self._submitted, task, image.copy()))
            indices.append(self._submitted)
            self._submitted += 1
        return indices

    def pending(self) -> int:
        return len(self._queue)

    def run_pending(self, mode: str = "pipelined") -> Tuple[List[np.ndarray], EngineRunStats]:
        """Drain the queue; returns per-request logits in submission order."""
        requests, self._queue = self._queue, []
        return self.process(requests, mode=mode)

    # ------------------------------------------------------------- execution --
    def process(
        self, requests: Sequence[InferenceRequest], mode: str = "pipelined"
    ) -> Tuple[List[np.ndarray], EngineRunStats]:
        """Execute ``requests`` under ``mode`` scheduling.

        The returned list is aligned with ``requests`` (first-submitted first),
        each entry a ``(num_classes,)`` logits vector.
        """
        if mode not in SCHEDULING_MODES:
            raise ValueError(f"unknown mode '{mode}'; choose from {SCHEDULING_MODES}")
        stats = EngineRunStats(mode=mode)
        position = {request.index: slot for slot, request in enumerate(requests)}
        outputs: List[Optional[np.ndarray]] = [None] * len(requests)
        previous_task: Optional[str] = None
        for task, batch in self._schedule(requests, mode):
            images = np.stack([request.image for request in batch])
            logits = self.plan.run(images, task, recorder=self.recorder)
            self.recorder.record_pass(task, len(batch))
            for request, row in zip(batch, logits):
                outputs[position[request.index]] = row
            stats.num_images += len(batch)
            stats.num_batches += 1
            stats.batch_tasks.append(task)
            if previous_task is not None and previous_task != task:
                stats.task_switches += 1
            previous_task = task
        assert all(output is not None for output in outputs), "scheduler dropped a request"
        return outputs, stats

    def _schedule(
        self, requests: Sequence[InferenceRequest], mode: str
    ) -> List[Tuple[str, List[InferenceRequest]]]:
        """Group requests into (task, micro-batch) units in execution order."""
        per_task: Dict[str, List[InferenceRequest]] = {}
        for request in requests:
            per_task.setdefault(request.task, []).append(request)

        chunks: Dict[str, List[List[InferenceRequest]]] = {
            task: [
                queue[start : start + self.micro_batch]
                for start in range(0, len(queue), self.micro_batch)
            ]
            for task, queue in per_task.items()
        }
        batches: List[Tuple[str, List[InferenceRequest]]] = []
        if mode == "singular":
            for task, task_chunks in chunks.items():
                batches.extend((task, chunk) for chunk in task_chunks)
        else:  # pipelined: round-robin one micro-batch per task
            rounds = max((len(task_chunks) for task_chunks in chunks.values()), default=0)
            for round_index in range(rounds):
                for task, task_chunks in chunks.items():
                    if round_index < len(task_chunks):
                        batches.append((task, task_chunks[round_index]))
        return batches

    # --------------------------------------------------------- hardware glue --
    def sparsity_profile(self, default_sparsity: float = 0.0):
        """Measured per-task, per-layer sparsity as a simulator-ready profile."""
        return self.recorder.to_profile(default_sparsity=default_sparsity)

    def hardware_report(
        self,
        shapes: Sequence[LayerShape],
        config: ExecutionConfig | None = None,
        simulator: SystolicArraySimulator | None = None,
        conv_only: bool = False,
    ) -> BatchResult:
        """Drive the systolic-array simulator with this engine's *measured* run.

        Uses the recorded processing order as the schedule and the measured
        sparsity as the profile, so the energy/cycle estimate reflects what the
        engine actually executed rather than a static table.
        """
        schedule = self.recorder.schedule()
        if not schedule:
            raise RuntimeError("no requests processed yet; nothing to simulate")
        simulator = simulator if simulator is not None else SystolicArraySimulator()
        config = config if config is not None else mime_config()
        return simulator.run(
            shapes, schedule, self.sparsity_profile(), config, conv_only=conv_only
        )
