"""Per-task plan specialization: dead-channel elimination and compacted GEMMs.

A compiled :class:`~repro.engine.plan.EnginePlan` pays for every MAC and only
*then* zeroes the channels a task's thresholds mask away.  Given a
:class:`~repro.engine.calibrate.CalibrationProfile` proving which output
channels never survive for one task, :func:`specialize_plan` rebuilds the plan
for that task with the dead channels gone — the masked GEMMs' weight columns,
biases and pre-laid-out thresholds are sliced to the live set, downstream
shapes (max-pool, workspaces, :class:`~repro.engine.plan.MaskSpec`) shrink to
match, and the resulting :class:`SpecializedEnginePlan` executes only the
live channels' work.

Two compaction strategies are offered:

* **compact_reduction=True (default, throughput mode)** — the shrinkage is
  propagated into the next kernel's im2col row structure and the FC head:
  consumer weight rows for dead input channels are removed, so both the
  output and the *reduction* dimension of every GEMM shrink to the live set
  and the MAC savings translate directly into CPU time (~2x at the paper's
  sparsity levels).  Removing exact-zero terms from a BLAS reduction can
  regroup the remaining summands across SIMD accumulators, so this mode is
  numerically equivalent only to the last ULP, not bit-identical.
* **compact_reduction=False (bit-exact verification mode)** — each compacted
  producer is followed by a :class:`~repro.engine.plan.ChannelScatterKernel`
  that writes the live channels back into their dense positions of a zero
  workspace right before the next dense-ordered consumer.  The dense plan's
  dead channels are exactly zero after masking, so every consumer sees
  bit-identical inputs and the specialized logits equal the dense plan's
  **bit for bit** on any input whose dead channels match the profile (always
  true for structurally dead channels, whose thresholds exceed any
  attainable pre-activation).  Bit exactness requires one concession to
  BLAS: a GEMM's per-column reduction order is stable across output widths
  only at the micro-kernel granularity, so compacted column counts are
  padded up to ``granularity`` (default 16) lanes with zero weights, zero
  bias and ``+inf`` thresholds — the pad lanes compute exact zeros and cost
  their MACs, which the effective-MAC accounting honestly includes — and
  compaction is restricted to GEMMs with at least ``exact_min_rows`` rows
  per image, because small-row GEMMs can cross into BLAS direct-kernel
  dispatch where the per-column order is width-dependent.  Because consumer
  reductions stay at dense width (BLAS GEMMs are bound by the ``M×K``
  panel), this mode roughly breaks even on CPU time; it exists to *prove* a
  specialization semantically correct, not to serve traffic.

The dynamic sparse fast path's knobs also live here:
:func:`enable_dynamic_sparse` switches it on with fixed thresholds and
:func:`autotune_dynamic_crossover` measures, per layer, the live-row fraction
below which gather→GEMM→scatter actually beats the dense GEMM on this
machine, caching the result on the plan.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.calibrate import CalibrationProfile, calibrate_plan
from repro.utils.ratios import fraction_saved
from repro.engine.plan import (
    ChannelScatterKernel,
    CompileError,
    ConvGemmMaskKernel,
    DynamicSparseConfig,
    EnginePlan,
    FlattenKernel,
    LinearMaskKernel,
    MaskSpec,
    MaxPoolKernel,
    TaskPlan,
)

__all__ = [
    "SpecializedEnginePlan",
    "specialize_plan",
    "specialize_tasks",
    "enable_dynamic_sparse",
    "autotune_dynamic_crossover",
]


@dataclass
class SpecializedEnginePlan(EnginePlan):
    """An :class:`EnginePlan` compacted for exactly one task.

    Carries the provenance of the compaction next to the executable plan:
    which channels stayed live per masked layer, the MACs/image of the dense
    source plan versus this plan, and the settings that produced it.  The
    plan serves only :attr:`source_task`; registering further tasks is a
    compile error because the compacted mask geometry no longer matches the
    training network.
    """

    source_task: str = ""
    dead_threshold: float = 0.0
    compact_reduction: bool = False
    live_channels: Dict[str, np.ndarray] = field(default_factory=dict)
    dense_macs_per_image: int = 0
    specialized_macs_per_image: int = 0

    def mac_reduction(self) -> float:
        """Fraction of the dense plan's MACs this plan avoids per image."""
        return fraction_saved(self.dense_macs_per_image, self.specialized_macs_per_image)

    def dead_channel_counts(self) -> Dict[str, int]:
        return {
            layer: int(np.count_nonzero(~live)) for layer, live in self.live_channels.items()
        }

    def add_task(self, task) -> TaskPlan:
        raise CompileError(
            f"a specialized plan serves only task '{self.source_task}'; "
            "add tasks to the dense plan and re-specialize"
        )


def coalescing_signature(plan) -> Optional[str]:
    """Geometry digest deciding which specialized plans may share a batch.

    Two specialized plans of the **same dense source** are interchangeable —
    their kernels compute bit-identical backbone math, differing only in the
    per-task thresholds/head that ride in the :class:`~repro.engine.plan.
    TaskPlan` — exactly when this digest matches: compaction produces weights
    as pure column slices of the shared dense arrays, so equal live sets (plus
    equal compaction mode, kernel variants and quantization payload) imply
    equal compacted tensors bit-for-bit.  Returns ``None`` for plans that are
    not :class:`SpecializedEnginePlan` instances (unknown provenance — never
    coalesce those with anything).
    """
    if type(plan) is not SpecializedEnginePlan:
        return None
    digest = hashlib.sha1()
    digest.update(repr((plan.compact_reduction, plan.dead_threshold)).encode())
    for layer in sorted(plan.live_channels):
        live = np.ascontiguousarray(plan.live_channels[layer], dtype=np.bool_)
        digest.update(layer.encode())
        digest.update(live.tobytes())
    for kernel in plan.kernels:
        weight_t = getattr(kernel, "weight_t", None)
        shape = tuple(weight_t.shape) if weight_t is not None else ()
        digest.update(
            repr(
                (
                    type(kernel).__name__,
                    getattr(kernel, "name", ""),
                    getattr(kernel, "variant", None),
                    shape,
                )
            ).encode()
        )
        quant = getattr(kernel, "quant", None)
        if quant is not None:
            # Quantization scales are derived from calibration ranges, not
            # just geometry — fold them in so plans calibrated differently
            # never coalesce (their int8 outputs would differ).
            digest.update(np.asarray(quant.w_scale).tobytes())
            digest.update(np.asarray(quant.scale).tobytes())
            digest.update(repr(float(quant.in_scale)).encode())
    return digest.hexdigest()


def _ensure_min_live(live: np.ndarray, rates: np.ndarray, min_live: int) -> np.ndarray:
    """Keep at least ``min_live`` channels, preferring the highest survival."""
    deficit = min_live - int(np.count_nonzero(live))
    if deficit > 0:
        live = live.copy()
        for index in np.argsort(rates)[::-1]:
            if not live[index]:
                live[index] = True
                deficit -= 1
                if deficit == 0:
                    break
    return live


def _conv_row_gather(live_in: np.ndarray, kernel_size: int) -> np.ndarray:
    """im2col row indices of the live input channels, in (ky, kx, c) order."""
    live_idx = np.flatnonzero(live_in)
    taps = np.arange(kernel_size * kernel_size) * live_in.shape[0]
    return (taps[:, None] + live_idx[None, :]).ravel()


def _compact_columns(
    weight_t: np.ndarray,
    bias: np.ndarray,
    laid_out: np.ndarray,
    live: np.ndarray,
    granularity: int,
):
    """Slice a masked GEMM's output columns to the live set, lane-padded.

    Live columns are packed first; the remainder up to the next
    ``granularity`` multiple gets zero weights, zero bias and ``+inf``
    thresholds, so pad lanes produce exact zeros after masking and, crucially,
    the padded width keeps BLAS's per-column reduction order identical to the
    dense GEMM's — that is what makes the scatter strategy bit-exact.
    Returns ``None`` when padding swallows the saving (no compaction).
    """
    dense_n = weight_t.shape[1]
    live_count = int(np.count_nonzero(live))
    padded_n = min(dense_n, -(-live_count // granularity) * granularity)
    if padded_n >= dense_n:
        return None
    weight_c = np.zeros((weight_t.shape[0], padded_n), dtype=weight_t.dtype)
    weight_c[:, :live_count] = weight_t[:, live]
    bias_c = np.zeros(padded_n, dtype=bias.dtype)
    bias_c[:live_count] = bias[live]
    thresholds_c = np.full(laid_out.shape[:-1] + (padded_n,), np.inf, dtype=laid_out.dtype)
    thresholds_c[..., :live_count] = laid_out[..., live]
    return weight_c, bias_c, thresholds_c, live_count, padded_n


def specialize_plan(
    plan: EnginePlan,
    task: str,
    profile: CalibrationProfile,
    dead_threshold: float = 0.0,
    compact_reduction: bool = True,
    min_live: int = 1,
    granularity: Optional[int] = None,
    exact_min_rows: int = 256,
    choose_kernels: bool = False,
    choose_batch: int = 8,
    choose_seed: int = 0,
    timing_cache=None,
) -> SpecializedEnginePlan:
    """Compact ``plan`` for ``task`` using the calibrated survival ``profile``.

    Channels whose calibrated survival rate is at or below ``dead_threshold``
    are eliminated (``0.0`` removes only channels that *never* fired during
    calibration); at least ``min_live`` channels per masked layer are always
    kept.  ``granularity`` is the column-lane padding of compacted GEMMs
    (default 16 in the bit-exact scatter mode — the bit-exactness
    requirement — and 1 in the default throughput mode).

    ``exact_min_rows`` applies to the bit-exact mode only: a masked GEMM is
    compacted only when it has at least that many rows per image
    (``H_out*W_out`` for a convolution, 1 for an FC layer — FC layers are
    therefore never compacted in exact mode).  BLAS keeps a GEMM's
    per-column reduction order stable across output widths for panel-sized
    row counts, but small-row GEMMs can cross into direct-kernel dispatch
    where it is not; the floor keeps the bit-for-bit guarantee honest at the
    cost of leaving the (MAC-light) deep layers dense.  See the module
    docstring for the exactness contract of the two compaction strategies.

    Kernel **variants** are reset by specialization: the rebuilt kernels run
    their default paths, because a variant choice (and any int8 payload) is
    measured/calibrated against one concrete geometry and the compacted
    geometry is new.  Kernel *names* are preserved, so re-applying a choice
    map (:func:`repro.engine.kernels.apply_kernel_choices`) or re-running
    the chooser/quantizer on the specialized plan composes cleanly; the
    specialize → quantize → autotune order is the supported pipeline.

    ``choose_kernels=True`` runs that last step here: the chooser
    (:func:`repro.engine.kernels.autotune_kernel_variants`, at
    ``choose_batch``/``choose_seed``) is invoked once on the freshly
    compacted geometry before the plan is returned, so the specialized plan
    arrives already tuned.  Measurements go through ``timing_cache``
    (default: the process-wide ``TIMING_CACHE``), which is what makes the
    per-deploy cost drop to zero for unchanged geometries — N tasks with
    identical compacted shapes, or a recalibration re-deploy that compacts
    to the same widths, resolve the chooser as pure cache replay.
    """
    if isinstance(plan, SpecializedEnginePlan):
        raise CompileError("cannot specialize an already-specialized plan")
    if task not in plan.tasks:
        raise KeyError(f"task '{task}' was not compiled; known: {plan.task_names()}")
    if min_live < 1:
        raise ValueError("min_live must be at least 1")
    if not 0.0 <= dead_threshold < 1.0:
        raise ValueError("dead_threshold must lie in [0, 1)")
    if granularity is None:
        granularity = 1 if compact_reduction else 16
    if granularity < 1:
        raise ValueError("granularity must be at least 1")
    if compact_reduction and granularity != 1:
        raise ValueError("compact_reduction propagates pure live sets; use granularity=1")
    source_task = plan.tasks[task]

    kernels: List[object] = []
    mask_specs: List[MaskSpec] = []
    thresholds: List[np.ndarray] = []
    live_channels: Dict[str, np.ndarray] = {}
    dense_macs = 0
    spec_macs = 0
    #: live mask over the *dense* channel/feature axis of the current
    #: activation stream (``None`` = dense stream) and the compacted stream's
    #: actual width (live channels first, then zero pad lanes).
    live_in: Optional[np.ndarray] = None
    stream_channels: Optional[int] = None
    spatial: Tuple[int, int] = (0, 0)  # H, W entering the flatten boundary

    def scatter_to_dense() -> None:
        """Exact mode: re-densify the stream before a dense-ordered consumer."""
        nonlocal live_in, stream_channels
        if live_in is None or compact_reduction:
            return
        kernels.append(
            ChannelScatterKernel(len(kernels), np.flatnonzero(live_in), live_in.shape[0])
        )
        live_in = None
        stream_channels = None

    def compact_masked_output(kernel, weight_t, bias):
        """Shared conv/linear output-side compaction; returns the new parts."""
        nonlocal live_in, stream_channels
        rates = np.asarray(profile.rates(task, kernel.mask.layer_name), dtype=float)
        if rates.shape[0] != weight_t.shape[1]:
            raise CompileError(
                f"profile for '{kernel.mask.layer_name}' has {rates.shape[0]} "
                f"channels but the kernel emits {weight_t.shape[1]}"
            )
        live_out = _ensure_min_live(rates > dead_threshold, rates, min_live)
        laid_out = source_task.thresholds[kernel.mask.slot]
        compacted = _compact_columns(weight_t, bias, laid_out, live_out, granularity)
        if compacted is None:
            # Compaction declined (all live, or lane padding swallows the
            # saving): every channel physically stays, and live_channels must
            # say so — dead_channel_counts() reports *eliminated* channels.
            live_channels[kernel.mask.layer_name] = np.ones(live_out.shape[0], dtype=bool)
            live_in = None
            stream_channels = None
            return weight_t, bias, laid_out
        live_channels[kernel.mask.layer_name] = live_out
        weight_t, bias, laid_out, _live_count, padded_n = compacted
        live_in = live_out
        stream_channels = padded_n
        return weight_t, bias, laid_out

    for kernel in plan.kernels:
        if isinstance(kernel, ConvGemmMaskKernel):
            scatter_to_dense()
            weight_t, bias, in_shape = kernel.weight_t, kernel.bias, kernel.in_shape
            if live_in is not None:  # aggressive mode: shrink the reduction
                rows = _conv_row_gather(live_in, kernel.kernel_size)
                weight_t = np.ascontiguousarray(weight_t[rows])
                in_shape = (int(np.count_nonzero(live_in)), in_shape[1], in_shape[2])
                live_in = None
                stream_channels = None
            spec = kernel.mask
            out_shape = kernel.out_shape
            if kernel.mask is not None:
                if compact_reduction or out_shape[1] * out_shape[2] >= exact_min_rows:
                    weight_t, bias, laid_out = compact_masked_output(kernel, weight_t, bias)
                else:
                    # Exact mode, small-row GEMM: stay at dense width (see
                    # the exact_min_rows note in the docstring).
                    laid_out = source_task.thresholds[kernel.mask.slot]
                    live_in = None
                    stream_channels = None
                out_shape = (weight_t.shape[1], out_shape[1], out_shape[2])
                spec = MaskSpec(
                    kernel.mask.slot,
                    kernel.mask.layer_name,
                    kernel.mask.kind,
                    (1, out_shape[1] * out_shape[2], out_shape[0]),
                )
                mask_specs.append(spec)
                thresholds.append(laid_out)
            kernels.append(
                ConvGemmMaskKernel(
                    len(kernels),
                    name=kernel.name,
                    weight_t=weight_t,
                    bias=bias,
                    kernel_size=kernel.kernel_size,
                    stride=kernel.stride,
                    padding=kernel.padding,
                    in_shape=in_shape,
                    out_shape=out_shape,
                    mask=spec,
                    dense_macs=kernel.dense_macs_per_image,
                    dense_channels=kernel.dense_channels,
                )
            )
            dense_macs += kernel.dense_macs_per_image
            spec_macs += out_shape[1] * out_shape[2] * weight_t.shape[0] * weight_t.shape[1]
            spatial = (out_shape[1], out_shape[2])
        elif isinstance(kernel, MaxPoolKernel):
            out_shape = kernel.out_shape
            if stream_channels is not None:
                out_shape = (stream_channels,) + tuple(out_shape[1:])
            kernels.append(
                MaxPoolKernel(
                    len(kernels), kernel.kernel_size, kernel.stride, out_shape, name=kernel.name
                )
            )
            spatial = (out_shape[1], out_shape[2])
        elif isinstance(kernel, FlattenKernel):
            if live_in is not None and compact_reduction:
                # NHWC flat index is position-major: every spatial position
                # carries one block of channels, so the flat live mask is the
                # channel mask tiled over positions.
                live_in = np.tile(live_in, spatial[0] * spatial[1])
                stream_channels = stream_channels * spatial[0] * spatial[1]
            else:
                scatter_to_dense()
            kernels.append(FlattenKernel(len(kernels)))
        elif isinstance(kernel, LinearMaskKernel):
            scatter_to_dense()
            weight_t, bias = kernel.weight_t, kernel.bias
            if live_in is not None:  # aggressive mode
                weight_t = np.ascontiguousarray(weight_t[np.flatnonzero(live_in)])
                live_in = None
                stream_channels = None
            spec = kernel.mask
            if kernel.mask is not None:
                if compact_reduction:
                    weight_t, bias, laid_out = compact_masked_output(kernel, weight_t, bias)
                else:
                    # Exact mode: FC GEMMs have one row per image — always
                    # below exact_min_rows (see the docstring), and their
                    # MAC share next to the convolutions is negligible.
                    laid_out = source_task.thresholds[kernel.mask.slot]
                    live_in = None
                    stream_channels = None
                spec = MaskSpec(
                    kernel.mask.slot,
                    kernel.mask.layer_name,
                    kernel.mask.kind,
                    (1, weight_t.shape[1]),
                )
                mask_specs.append(spec)
                thresholds.append(laid_out)
            kernels.append(
                LinearMaskKernel(
                    len(kernels),
                    name=kernel.name,
                    weight_t=weight_t,
                    bias=bias,
                    mask=spec,
                    relu=kernel.relu,
                    dense_macs=kernel.dense_macs_per_image,
                    dense_channels=kernel.dense_channels,
                )
            )
            dense_macs += kernel.dense_macs_per_image
            spec_macs += weight_t.shape[0] * weight_t.shape[1]
        elif isinstance(kernel, ChannelScatterKernel):
            raise CompileError("cannot specialize an already-specialized plan")
        else:
            raise CompileError(f"cannot specialize kernel type {type(kernel).__name__}")

    head_weight_t = source_task.head_weight_t
    if live_in is not None:
        if compact_reduction:
            head_weight_t = np.ascontiguousarray(head_weight_t[np.flatnonzero(live_in)])
        else:
            scatter_to_dense()
    task_plan = TaskPlan(
        name=source_task.name,
        num_classes=source_task.num_classes,
        thresholds=thresholds,
        head_weight_t=head_weight_t,
        head_bias=source_task.head_bias,
        head_dense_macs=source_task.head_dense_macs,
    )
    dense_macs += source_task.head_dense_macs
    spec_macs += head_weight_t.shape[0] * head_weight_t.shape[1]

    spec = SpecializedEnginePlan(
        dtype=plan.dtype,
        input_shape=plan.input_shape,
        kernels=kernels,
        mask_specs=mask_specs,
        tasks={task: task_plan},
        head_permutation=plan.head_permutation,
        dynamic=plan.dynamic,
        source_task=task,
        dead_threshold=dead_threshold,
        compact_reduction=compact_reduction,
        live_channels=live_channels,
        dense_macs_per_image=dense_macs,
        specialized_macs_per_image=spec_macs,
    )
    if choose_kernels:
        from repro.engine.kernels import autotune_kernel_variants

        autotune_kernel_variants(
            spec, batch=choose_batch, seed=choose_seed, cache=timing_cache
        )
    return spec


def specialize_tasks(
    plan: EnginePlan,
    profile: Optional[CalibrationProfile] = None,
    tasks: Optional[Sequence[str]] = None,
    dead_threshold: float = 0.0,
    compact_reduction: bool = True,
    min_live: int = 1,
    granularity: Optional[int] = None,
    exact_min_rows: int = 256,
    calibration_batch: int = 32,
    calibration_seed: int = 0,
    choose_kernels: bool = False,
    choose_batch: int = 8,
    choose_seed: int = 0,
    timing_cache=None,
) -> Dict[str, SpecializedEnginePlan]:
    """Specialize ``plan`` for every task (calibrating first when needed).

    Returns a task-name → :class:`SpecializedEnginePlan` mapping ready to be
    handed to :class:`~repro.engine.MultiTaskEngine` or
    :class:`~repro.serving.ServingRuntime`, which select the specialized plan
    per micro-batch and fall back to the dense plan for unlisted tasks.

    With ``choose_kernels=True`` each per-task plan comes back chooser-tuned
    on its compacted geometry (see :func:`specialize_plan`); the shared
    timing cache means tasks whose layers compact to the same shapes time
    each candidate variant once, not once per task.
    """
    names = list(tasks) if tasks is not None else plan.task_names()
    if profile is None:
        profile = calibrate_plan(plan, tasks=names, batch_size=calibration_batch, seed=calibration_seed)
    return {
        name: specialize_plan(
            plan,
            name,
            profile,
            dead_threshold=dead_threshold,
            compact_reduction=compact_reduction,
            min_live=min_live,
            granularity=granularity,
            exact_min_rows=exact_min_rows,
            choose_kernels=choose_kernels,
            choose_batch=choose_batch,
            choose_seed=choose_seed,
            timing_cache=timing_cache,
        )
        for name in names
    }


# ---------------------------------------------------------------------------
# Dynamic sparse fast path tuning.
# ---------------------------------------------------------------------------
def enable_dynamic_sparse(
    plan: EnginePlan, gate: float = 0.5, crossover: float = 0.5
) -> EnginePlan:
    """Turn on the dynamic row-gather fast path with fixed thresholds.

    ``gate`` is the minimum measured element sparsity of the previous masked
    layer before a kernel computes row liveness at all; ``crossover`` is the
    maximum live-row fraction at which the gathered GEMM is used.  Call
    before serving starts — the plan is immutable once workers execute it.
    """
    if not 0.0 <= gate <= 1.0:
        raise ValueError("gate must lie in [0, 1]")
    if not 0.0 <= crossover <= 1.0:
        raise ValueError("crossover must lie in [0, 1]")
    plan.dynamic = DynamicSparseConfig(gate=gate, default_crossover=crossover)
    return plan


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def autotune_dynamic_crossover(
    plan: EnginePlan,
    batch: int = 8,
    fractions: Sequence[float] = (0.125, 0.25, 0.375, 0.5, 0.625, 0.75),
    repeats: int = 3,
    gate: float = 0.5,
    seed: int = 0,
) -> DynamicSparseConfig:
    """Measure per-layer row-gather crossovers and cache them on ``plan``.

    For every GEMM kernel the tuner times the dense matmul against the
    gather→GEMM→scatter path at each candidate live-row ``fraction`` on
    synthetic matrices of the kernel's true geometry, and keeps the largest
    fraction at which the sparse path still wins.  A layer where the sparse
    path never wins gets crossover 0.0, i.e. it always runs dense.  The
    resulting config is stored on ``plan.dynamic`` and returned.

    Crossovers are geometry-specific: tune the plan you intend to serve — a
    specialized plan's compacted GEMMs have different economics than the
    dense plan's, so autotune each separately rather than reusing one config.
    """
    if batch <= 0:
        raise ValueError("batch must be positive")
    rng = np.random.default_rng(seed)
    crossover: Dict[str, float] = {}
    for kernel in plan.kernels:
        if isinstance(kernel, ConvGemmMaskKernel):
            rows = batch * kernel.out_shape[1] * kernel.out_shape[2]
        elif isinstance(kernel, LinearMaskKernel):
            rows = batch
        else:
            continue
        k_dim, n_dim = kernel.weight_t.shape
        weight = rng.normal(size=(k_dim, n_dim)).astype(plan.dtype)
        dense_in = rng.normal(size=(rows, k_dim)).astype(plan.dtype)
        out = np.empty((rows, n_dim), dtype=plan.dtype)
        dense_time = _time_best(lambda: np.matmul(dense_in, weight, out=out), repeats)

        best = 0.0
        for fraction in sorted(fractions):
            live_rows = max(1, int(round(fraction * rows)))
            sparse_in = np.zeros((rows, k_dim), dtype=plan.dtype)
            index = rng.choice(rows, size=live_rows, replace=False)
            sparse_in[index] = rng.normal(size=(live_rows, k_dim))

            def sparse_path() -> None:
                live = sparse_in.any(axis=1)
                out[:] = 0.0
                out[live] = sparse_in[live] @ weight

            if _time_best(sparse_path, repeats) < dense_time:
                best = fraction
            else:
                break
        crossover[kernel.name] = best
    config = DynamicSparseConfig(gate=gate, default_crossover=0.0, crossover=crossover)
    plan.dynamic = config
    return config
