"""Picklable serialization of compiled engine plans.

A live :class:`~repro.engine.plan.EnginePlan` is deliberately *not* something
to ship across a process boundary: its kernels hold process-unique workspace
uids, its default :class:`~repro.engine.plan.WorkspacePool` caches buffers
that must never be shared between processes, and pickling NumPy views of a
parent's buffers would silently alias memory.  A :class:`PlanSpec` is the
transportable alternative — a plain-data snapshot of everything a plan *is*
(kernel geometry, weight/bias/threshold tensors, task plans, dynamic-sparse
config, specialization provenance) and nothing a plan *uses at run time*.

``PlanSpec.from_plan(plan)`` captures a dense or specialized plan;
``spec.build()`` reconstructs a semantically identical plan with **fresh**
kernel uids and an **empty** workspace pool, so a spawned worker process
deserialises its own private executable copy instead of inheriting parent
state.  Reconstruction is exact: the rebuilt plan produces bit-identical
logits to the source plan for any input, because every tensor is carried
verbatim and the kernels are pure functions of their tensors.

This is the serving analogue of :class:`~repro.engine.calibrate.
CalibrationProfile`'s JSON story, but binary (pickle) because plans carry
large float tensors where JSON round-trips would be wasteful and lossy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.kernels import QuantizedGemm
from repro.engine.plan import (
    ChannelScatterKernel,
    CompileError,
    ConvGemmMaskKernel,
    DynamicSparseConfig,
    EnginePlan,
    FlattenKernel,
    LinearMaskKernel,
    MaskSpec,
    MaxPoolKernel,
    TaskPlan,
)

__all__ = ["PlanSetSpec", "PlanSpec", "TaskSpec"]


class _TensorRef:
    """Index into a :class:`PlanSetSpec`-level shared tensor table.

    Version-4 specs captured with deduplication replace repeated ndarrays
    (the shared backbone a specialized plan passes through by identity) with
    one of these markers, so the tensor pickles **once** per plan set rather
    than once per task.  Resolution back to arrays happens in
    :meth:`PlanSetSpec.build_all`; a bare :meth:`PlanSpec.build` never sees
    refs because stand-alone captures don't intern.
    """

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_TensorRef({self.index})"

    # __slots__ classes need explicit pickle support.
    def __getstate__(self):
        return self.index

    def __setstate__(self, state) -> None:
        self.index = state


class _TensorInterner:
    """Dedup ndarrays by *source object* identity during capture.

    ``specialize_plan`` passes uncompacted arrays through to each per-task
    plan by identity, so keying on ``id()`` of the source array is exactly
    what collapses the N backbone copies to one.  Source references are kept
    alive for the interner's lifetime so ids cannot be recycled mid-capture.
    """

    def __init__(self) -> None:
        self.table: List[np.ndarray] = []
        self._index: Dict[int, int] = {}
        self._keepalive: List[np.ndarray] = []

    def __call__(self, value: np.ndarray) -> _TensorRef:
        key = id(value)
        slot = self._index.get(key)
        if slot is None:
            slot = len(self.table)
            self._index[key] = slot
            self._keepalive.append(value)
            self.table.append(np.array(value))
        return _TensorRef(slot)


def _arr(value, intern):
    return intern(value) if intern is not None else np.array(value)


def _resolve(obj, tensors: List[np.ndarray]):
    """Replace every :class:`_TensorRef` in a captured structure with its
    table entry.  Refs to one slot resolve to the *same* array object, so
    worker-side plans keep the sharing the capture found."""
    if isinstance(obj, _TensorRef):
        return tensors[obj.index]
    if isinstance(obj, dict):
        return {key: _resolve(value, tensors) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_resolve(value, tensors) for value in obj]
    if isinstance(obj, tuple):
        return tuple(_resolve(value, tensors) for value in obj)
    if isinstance(obj, TaskSpec):
        return TaskSpec(
            name=obj.name,
            num_classes=obj.num_classes,
            thresholds=[_resolve(t, tensors) for t in obj.thresholds],
            head_weight_t=_resolve(obj.head_weight_t, tensors),
            head_bias=_resolve(obj.head_bias, tensors),
            head_dense_macs=obj.head_dense_macs,
        )
    return obj


@dataclass
class TaskSpec:
    """Plain-data snapshot of one :class:`~repro.engine.plan.TaskPlan`."""

    name: str
    num_classes: int
    thresholds: List[np.ndarray]
    head_weight_t: np.ndarray
    head_bias: np.ndarray
    head_dense_macs: int = 0

    @classmethod
    def from_task(cls, task: TaskPlan, intern=None) -> "TaskSpec":
        return cls(
            name=task.name,
            num_classes=task.num_classes,
            thresholds=[_arr(t, intern) for t in task.thresholds],
            head_weight_t=_arr(task.head_weight_t, intern),
            head_bias=_arr(task.head_bias, intern),
            head_dense_macs=task.head_dense_macs,
        )

    def build(self) -> TaskPlan:
        # ``asarray`` not ``array``: plans treat tensors as immutable, so the
        # rebuilt plan may share the spec's arrays — which is what lets every
        # plan resolved against one v4 tensor table share its backbone.
        return TaskPlan(
            name=self.name,
            num_classes=self.num_classes,
            thresholds=[np.asarray(t) for t in self.thresholds],
            head_weight_t=np.asarray(self.head_weight_t),
            head_bias=np.asarray(self.head_bias),
            head_dense_macs=self.head_dense_macs,
        )


def _mask_tuple(mask: Optional[MaskSpec]):
    if mask is None:
        return None
    return (mask.slot, mask.layer_name, mask.kind, tuple(mask.gemm_shape))


def _mask_from_tuple(data) -> Optional[MaskSpec]:
    if data is None:
        return None
    slot, layer_name, kind, gemm_shape = data
    return MaskSpec(slot, layer_name, kind, tuple(gemm_shape))


def _quant_dict(kernel, intern=None) -> Optional[Dict[str, object]]:
    quant = getattr(kernel, "quant", None)
    if quant is None:
        return None
    payload = {
        "weight_q": _arr(quant.weight_q, intern),
        "w_scale": _arr(quant.w_scale, intern),
        "in_scale": float(quant.in_scale),
        "scale": _arr(quant.scale, intern),
    }
    if getattr(quant, "weight_qi", None) is not None:
        payload["weight_qi"] = _arr(quant.weight_qi, intern)
    return payload


def _quant_from_dict(data) -> Optional[QuantizedGemm]:
    if data is None:
        return None
    weight_qi = data.get("weight_qi")
    return QuantizedGemm(
        weight_q=np.asarray(data["weight_q"]),
        w_scale=np.asarray(data["w_scale"]),
        in_scale=float(data["in_scale"]),
        scale=np.asarray(data["scale"]),
        # Pre-v3 payloads lack the int16 rows; the int8spd runner derives
        # them lazily from weight_q on first use.
        weight_qi=None if weight_qi is None else np.ascontiguousarray(weight_qi),
    )


def _describe_kernel(kernel, intern=None) -> Dict[str, object]:
    if isinstance(kernel, ConvGemmMaskKernel):
        return {
            "type": "conv",
            "name": kernel.name,
            "weight_t": _arr(kernel.weight_t, intern),
            "bias": _arr(kernel.bias, intern),
            "kernel_size": kernel.kernel_size,
            "stride": kernel.stride,
            "padding": kernel.padding,
            "in_shape": tuple(kernel.in_shape),
            "out_shape": tuple(kernel.out_shape),
            "mask": _mask_tuple(kernel.mask),
            "dense_macs": kernel.dense_macs_per_image,
            "dense_channels": kernel.dense_channels,
            "variant": kernel.variant,
            "quant": _quant_dict(kernel, intern),
        }
    if isinstance(kernel, LinearMaskKernel):
        return {
            "type": "linear",
            "name": kernel.name,
            "weight_t": _arr(kernel.weight_t, intern),
            "bias": _arr(kernel.bias, intern),
            "mask": _mask_tuple(kernel.mask),
            "relu": kernel.relu,
            "dense_macs": kernel.dense_macs_per_image,
            "dense_channels": kernel.dense_channels,
            "variant": kernel.variant,
            "quant": _quant_dict(kernel, intern),
        }
    if isinstance(kernel, MaxPoolKernel):
        return {
            "type": "pool",
            "name": kernel.name,
            "kernel_size": kernel.kernel_size,
            "stride": kernel.stride,
            "out_shape": tuple(kernel.out_shape),
            "variant": kernel.variant,
        }
    if isinstance(kernel, FlattenKernel):
        return {"type": "flatten"}
    if isinstance(kernel, ChannelScatterKernel):
        return {
            "type": "scatter",
            "live_index": _arr(kernel.live_index, intern),
            "dense_channels": kernel.dense_channels,
        }
    raise CompileError(f"cannot serialize kernel type {type(kernel).__name__}")


def _build_kernel(index: int, desc: Dict[str, object]):
    # ``desc.get`` defaults keep version-1 specs (captured before kernel
    # variants existed) loadable: they rebuild on the default paths.
    kind = desc["type"]
    if kind == "conv":
        kernel = ConvGemmMaskKernel(
            index,
            name=desc["name"],
            weight_t=np.asarray(desc["weight_t"]),
            bias=np.asarray(desc["bias"]),
            kernel_size=desc["kernel_size"],
            stride=desc["stride"],
            padding=desc["padding"],
            in_shape=tuple(desc["in_shape"]),
            out_shape=tuple(desc["out_shape"]),
            mask=_mask_from_tuple(desc["mask"]),
            dense_macs=desc["dense_macs"],
            dense_channels=desc["dense_channels"],
        )
        kernel.variant = desc.get("variant", "im2col")
        kernel.quant = _quant_from_dict(desc.get("quant"))
        return kernel
    if kind == "linear":
        kernel = LinearMaskKernel(
            index,
            name=desc["name"],
            weight_t=np.asarray(desc["weight_t"]),
            bias=np.asarray(desc["bias"]),
            mask=_mask_from_tuple(desc["mask"]),
            relu=desc["relu"],
            dense_macs=desc["dense_macs"],
            dense_channels=desc["dense_channels"],
        )
        kernel.variant = desc.get("variant", "dense")
        kernel.quant = _quant_from_dict(desc.get("quant"))
        return kernel
    if kind == "pool":
        kernel = MaxPoolKernel(
            index,
            desc["kernel_size"],
            desc["stride"],
            tuple(desc["out_shape"]),
            name=desc.get("name"),
        )
        kernel.variant = desc.get("variant", "reshape")
        return kernel
    if kind == "flatten":
        return FlattenKernel(index)
    if kind == "scatter":
        return ChannelScatterKernel(
            index, np.asarray(desc["live_index"]), desc["dense_channels"]
        )
    raise CompileError(f"cannot deserialize kernel type '{kind}'")


@dataclass
class PlanSpec:
    """A picklable, workspace-free description of an :class:`EnginePlan`.

    ``specialization`` is ``None`` for a dense plan; for a
    :class:`~repro.engine.specialize.SpecializedEnginePlan` it carries the
    compaction provenance so the rebuilt plan reports the same
    :meth:`~repro.engine.specialize.SpecializedEnginePlan.mac_reduction` and
    :meth:`~repro.engine.specialize.SpecializedEnginePlan.dead_channel_counts`.
    """

    dtype: str
    input_shape: Tuple[int, int, int]
    kernels: List[Dict[str, object]]
    mask_specs: List[Tuple[int, str, str, Tuple[int, ...]]]
    tasks: Dict[str, TaskSpec]
    head_permutation: Optional[np.ndarray] = None
    dynamic: Optional[Tuple[float, float, Dict[str, float]]] = None
    specialization: Optional[Dict[str, object]] = None
    #: The chooser's per-kernel variant map (kernel name -> variant); the
    #: kernels' own ``variant`` fields are authoritative for execution, this
    #: is the replayable record (see ``apply_kernel_choices``).
    kernel_choices: Optional[Dict[str, str]] = None
    #: 2 = kernel descriptors carry ``variant``/``quant`` (version-1 specs
    #: still load; see ``_build_kernel``).
    #: 3 = quant payloads additionally carry the packed int16 rows
    #: (``weight_qi``) the int8spd datapath streams, and variants may name
    #: the v3 lowerings (``packed``/``winograd``/``int8spd``) whose derived
    #: weight layouts (Winograd transform, L2 column panels) are rebuilt
    #: lazily in the worker rather than serialized.  Older specs still load:
    #: every v3 field degrades to a lazy derivation.
    #: 4 = tensors captured through :meth:`PlanSetSpec.capture` are interned
    #: into the set-level shared table, with ``_TensorRef`` markers standing
    #: in here; only :meth:`PlanSetSpec.build_all` resolves them.
    version: int = 3

    # ----------------------------------------------------------------- capture --
    @classmethod
    def from_plan(cls, plan: EnginePlan, intern=None) -> "PlanSpec":
        from repro.engine.specialize import SpecializedEnginePlan

        dynamic = None
        if plan.dynamic is not None:
            dynamic = (
                plan.dynamic.gate,
                plan.dynamic.default_crossover,
                dict(plan.dynamic.crossover),
            )
        specialization = None
        if isinstance(plan, SpecializedEnginePlan):
            specialization = {
                "source_task": plan.source_task,
                "dead_threshold": plan.dead_threshold,
                "compact_reduction": plan.compact_reduction,
                "live_channels": {
                    layer: _arr(live, intern) for layer, live in plan.live_channels.items()
                },
                "dense_macs_per_image": plan.dense_macs_per_image,
                "specialized_macs_per_image": plan.specialized_macs_per_image,
            }
        return cls(
            dtype=np.dtype(plan.dtype).name,
            input_shape=tuple(plan.input_shape),
            kernels=[_describe_kernel(kernel, intern) for kernel in plan.kernels],
            mask_specs=[_mask_tuple(spec) for spec in plan.mask_specs],
            tasks={
                name: TaskSpec.from_task(task, intern) for name, task in plan.tasks.items()
            },
            head_permutation=(
                _arr(plan.head_permutation, intern)
                if plan.head_permutation is not None
                else None
            ),
            dynamic=dynamic,
            specialization=specialization,
            kernel_choices=(
                dict(plan.kernel_choices) if getattr(plan, "kernel_choices", None) else None
            ),
            version=4 if intern is not None else 3,
        )

    # ------------------------------------------------------------------- build --
    def resolved(self, tensors: Optional[List[np.ndarray]]) -> "PlanSpec":
        """Return a ref-free copy of this spec, arrays pulled from ``tensors``.

        Identity-preserving: refs to one table slot resolve to the same array
        object across every spec resolved against the same table, so a
        rebuilt plan set shares its backbone arrays the way the captured one
        did.  A no-op (returns ``self``) when there is no table.
        """
        if tensors is None:
            return self
        return replace(
            self,
            kernels=_resolve(self.kernels, tensors),
            tasks=_resolve(self.tasks, tensors),
            head_permutation=_resolve(self.head_permutation, tensors),
            specialization=_resolve(self.specialization, tensors),
        )

    def build(self) -> EnginePlan:
        """Reconstruct an executable plan: fresh kernels, empty workspaces."""
        from repro.engine.specialize import SpecializedEnginePlan

        kernels = [_build_kernel(index, desc) for index, desc in enumerate(self.kernels)]
        mask_specs = [_mask_from_tuple(data) for data in self.mask_specs]
        tasks = {name: spec.build() for name, spec in self.tasks.items()}
        dynamic = None
        if self.dynamic is not None:
            gate, default_crossover, crossover = self.dynamic
            dynamic = DynamicSparseConfig(
                gate=gate, default_crossover=default_crossover, crossover=dict(crossover)
            )
        common = dict(
            dtype=np.dtype(self.dtype),
            input_shape=tuple(self.input_shape),
            kernels=kernels,
            mask_specs=mask_specs,
            tasks=tasks,
            head_permutation=(
                np.asarray(self.head_permutation)
                if self.head_permutation is not None
                else None
            ),
            dynamic=dynamic,
            # getattr: version-1 pickles predate the field entirely.
            kernel_choices=(
                dict(self.kernel_choices)
                if getattr(self, "kernel_choices", None)
                else None
            ),
        )
        if self.specialization is None:
            return EnginePlan(**common)
        extra = self.specialization
        return SpecializedEnginePlan(
            **common,
            source_task=extra["source_task"],
            dead_threshold=extra["dead_threshold"],
            compact_reduction=extra["compact_reduction"],
            live_channels={
                layer: np.asarray(live) for layer, live in extra["live_channels"].items()
            },
            dense_macs_per_image=extra["dense_macs_per_image"],
            specialized_macs_per_image=extra["specialized_macs_per_image"],
        )


@dataclass
class PlanSetSpec:
    """One picklable snapshot of a whole serving plan set.

    The unit the process-sharded runtime ships to a worker in *every*
    situation that (re)builds plans — initial launch, a two-phase hot-swap,
    and a supervisor **restart** of a crashed worker.  Capturing the dense
    plan and the per-task specialized plans together means the restart path
    cannot drift from the swap path: a respawned shard rebuilds from exactly
    the spec the committed generation shipped, so it rejoins the fleet on the
    same plans every live shard is serving.
    """

    plan: PlanSpec
    specialized: Dict[str, PlanSpec]
    #: Version-4 shared tensor table.  ``capture(dedup=True)`` interns every
    #: ndarray by *source object* identity across the dense plan and all
    #: specialized plans, so the frozen backbone (which ``specialize_plan``
    #: passes through to each per-task plan by identity) pickles **once**
    #: per plan set instead of once per task — the wire-size fix for the
    #: many-task regime.  ``None`` for pre-v4 pickles and plain captures.
    tensors: Optional[List[np.ndarray]] = None

    @classmethod
    def capture(
        cls,
        plan: EnginePlan,
        specialized: Dict[str, EnginePlan],
        dedup: bool = True,
    ) -> "PlanSetSpec":
        intern = _TensorInterner() if dedup else None
        captured = cls(
            plan=PlanSpec.from_plan(plan, intern),
            specialized={
                name: PlanSpec.from_plan(spec, intern) for name, spec in specialized.items()
            },
            tensors=intern.table if intern is not None else None,
        )
        return captured

    def build_all(self) -> Tuple[EnginePlan, Dict[str, EnginePlan]]:
        """Reconstruct (dense plan, per-task specialized plans) — fresh kernels.

        v4 specs resolve against the shared tensor table first; refs to one
        slot come back as the same array object, so the rebuilt plans keep
        the backbone sharing the capture deduplicated.  ``getattr`` tolerance:
        pre-v4 pickles have no ``tensors`` attribute at all.
        """
        tensors = getattr(self, "tensors", None)
        return (
            self.plan.resolved(tensors).build(),
            {
                name: spec.resolved(tensors).build()
                for name, spec in self.specialized.items()
            },
        )
