"""Picklable serialization of compiled engine plans.

A live :class:`~repro.engine.plan.EnginePlan` is deliberately *not* something
to ship across a process boundary: its kernels hold process-unique workspace
uids, its default :class:`~repro.engine.plan.WorkspacePool` caches buffers
that must never be shared between processes, and pickling NumPy views of a
parent's buffers would silently alias memory.  A :class:`PlanSpec` is the
transportable alternative — a plain-data snapshot of everything a plan *is*
(kernel geometry, weight/bias/threshold tensors, task plans, dynamic-sparse
config, specialization provenance) and nothing a plan *uses at run time*.

``PlanSpec.from_plan(plan)`` captures a dense or specialized plan;
``spec.build()`` reconstructs a semantically identical plan with **fresh**
kernel uids and an **empty** workspace pool, so a spawned worker process
deserialises its own private executable copy instead of inheriting parent
state.  Reconstruction is exact: the rebuilt plan produces bit-identical
logits to the source plan for any input, because every tensor is carried
verbatim and the kernels are pure functions of their tensors.

This is the serving analogue of :class:`~repro.engine.calibrate.
CalibrationProfile`'s JSON story, but binary (pickle) because plans carry
large float tensors where JSON round-trips would be wasteful and lossy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.kernels import QuantizedGemm
from repro.engine.plan import (
    ChannelScatterKernel,
    CompileError,
    ConvGemmMaskKernel,
    DynamicSparseConfig,
    EnginePlan,
    FlattenKernel,
    LinearMaskKernel,
    MaskSpec,
    MaxPoolKernel,
    TaskPlan,
)

__all__ = ["PlanSetSpec", "PlanSpec", "TaskSpec"]


@dataclass
class TaskSpec:
    """Plain-data snapshot of one :class:`~repro.engine.plan.TaskPlan`."""

    name: str
    num_classes: int
    thresholds: List[np.ndarray]
    head_weight_t: np.ndarray
    head_bias: np.ndarray
    head_dense_macs: int = 0

    @classmethod
    def from_task(cls, task: TaskPlan) -> "TaskSpec":
        return cls(
            name=task.name,
            num_classes=task.num_classes,
            thresholds=[np.array(t) for t in task.thresholds],
            head_weight_t=np.array(task.head_weight_t),
            head_bias=np.array(task.head_bias),
            head_dense_macs=task.head_dense_macs,
        )

    def build(self) -> TaskPlan:
        return TaskPlan(
            name=self.name,
            num_classes=self.num_classes,
            thresholds=[np.array(t) for t in self.thresholds],
            head_weight_t=np.array(self.head_weight_t),
            head_bias=np.array(self.head_bias),
            head_dense_macs=self.head_dense_macs,
        )


def _mask_tuple(mask: Optional[MaskSpec]):
    if mask is None:
        return None
    return (mask.slot, mask.layer_name, mask.kind, tuple(mask.gemm_shape))


def _mask_from_tuple(data) -> Optional[MaskSpec]:
    if data is None:
        return None
    slot, layer_name, kind, gemm_shape = data
    return MaskSpec(slot, layer_name, kind, tuple(gemm_shape))


def _quant_dict(kernel) -> Optional[Dict[str, object]]:
    quant = getattr(kernel, "quant", None)
    if quant is None:
        return None
    payload = {
        "weight_q": np.array(quant.weight_q),
        "w_scale": np.array(quant.w_scale),
        "in_scale": float(quant.in_scale),
        "scale": np.array(quant.scale),
    }
    if getattr(quant, "weight_qi", None) is not None:
        payload["weight_qi"] = np.array(quant.weight_qi)
    return payload


def _quant_from_dict(data) -> Optional[QuantizedGemm]:
    if data is None:
        return None
    weight_qi = data.get("weight_qi")
    return QuantizedGemm(
        weight_q=np.array(data["weight_q"]),
        w_scale=np.array(data["w_scale"]),
        in_scale=float(data["in_scale"]),
        scale=np.array(data["scale"]),
        # Pre-v3 payloads lack the int16 rows; the int8spd runner derives
        # them lazily from weight_q on first use.
        weight_qi=None if weight_qi is None else np.ascontiguousarray(weight_qi),
    )


def _describe_kernel(kernel) -> Dict[str, object]:
    if isinstance(kernel, ConvGemmMaskKernel):
        return {
            "type": "conv",
            "name": kernel.name,
            "weight_t": np.array(kernel.weight_t),
            "bias": np.array(kernel.bias),
            "kernel_size": kernel.kernel_size,
            "stride": kernel.stride,
            "padding": kernel.padding,
            "in_shape": tuple(kernel.in_shape),
            "out_shape": tuple(kernel.out_shape),
            "mask": _mask_tuple(kernel.mask),
            "dense_macs": kernel.dense_macs_per_image,
            "dense_channels": kernel.dense_channels,
            "variant": kernel.variant,
            "quant": _quant_dict(kernel),
        }
    if isinstance(kernel, LinearMaskKernel):
        return {
            "type": "linear",
            "name": kernel.name,
            "weight_t": np.array(kernel.weight_t),
            "bias": np.array(kernel.bias),
            "mask": _mask_tuple(kernel.mask),
            "relu": kernel.relu,
            "dense_macs": kernel.dense_macs_per_image,
            "dense_channels": kernel.dense_channels,
            "variant": kernel.variant,
            "quant": _quant_dict(kernel),
        }
    if isinstance(kernel, MaxPoolKernel):
        return {
            "type": "pool",
            "name": kernel.name,
            "kernel_size": kernel.kernel_size,
            "stride": kernel.stride,
            "out_shape": tuple(kernel.out_shape),
            "variant": kernel.variant,
        }
    if isinstance(kernel, FlattenKernel):
        return {"type": "flatten"}
    if isinstance(kernel, ChannelScatterKernel):
        return {
            "type": "scatter",
            "live_index": np.array(kernel.live_index),
            "dense_channels": kernel.dense_channels,
        }
    raise CompileError(f"cannot serialize kernel type {type(kernel).__name__}")


def _build_kernel(index: int, desc: Dict[str, object]):
    # ``desc.get`` defaults keep version-1 specs (captured before kernel
    # variants existed) loadable: they rebuild on the default paths.
    kind = desc["type"]
    if kind == "conv":
        kernel = ConvGemmMaskKernel(
            index,
            name=desc["name"],
            weight_t=np.array(desc["weight_t"]),
            bias=np.array(desc["bias"]),
            kernel_size=desc["kernel_size"],
            stride=desc["stride"],
            padding=desc["padding"],
            in_shape=tuple(desc["in_shape"]),
            out_shape=tuple(desc["out_shape"]),
            mask=_mask_from_tuple(desc["mask"]),
            dense_macs=desc["dense_macs"],
            dense_channels=desc["dense_channels"],
        )
        kernel.variant = desc.get("variant", "im2col")
        kernel.quant = _quant_from_dict(desc.get("quant"))
        return kernel
    if kind == "linear":
        kernel = LinearMaskKernel(
            index,
            name=desc["name"],
            weight_t=np.array(desc["weight_t"]),
            bias=np.array(desc["bias"]),
            mask=_mask_from_tuple(desc["mask"]),
            relu=desc["relu"],
            dense_macs=desc["dense_macs"],
            dense_channels=desc["dense_channels"],
        )
        kernel.variant = desc.get("variant", "dense")
        kernel.quant = _quant_from_dict(desc.get("quant"))
        return kernel
    if kind == "pool":
        kernel = MaxPoolKernel(
            index,
            desc["kernel_size"],
            desc["stride"],
            tuple(desc["out_shape"]),
            name=desc.get("name"),
        )
        kernel.variant = desc.get("variant", "reshape")
        return kernel
    if kind == "flatten":
        return FlattenKernel(index)
    if kind == "scatter":
        return ChannelScatterKernel(index, np.array(desc["live_index"]), desc["dense_channels"])
    raise CompileError(f"cannot deserialize kernel type '{kind}'")


@dataclass
class PlanSpec:
    """A picklable, workspace-free description of an :class:`EnginePlan`.

    ``specialization`` is ``None`` for a dense plan; for a
    :class:`~repro.engine.specialize.SpecializedEnginePlan` it carries the
    compaction provenance so the rebuilt plan reports the same
    :meth:`~repro.engine.specialize.SpecializedEnginePlan.mac_reduction` and
    :meth:`~repro.engine.specialize.SpecializedEnginePlan.dead_channel_counts`.
    """

    dtype: str
    input_shape: Tuple[int, int, int]
    kernels: List[Dict[str, object]]
    mask_specs: List[Tuple[int, str, str, Tuple[int, ...]]]
    tasks: Dict[str, TaskSpec]
    head_permutation: Optional[np.ndarray] = None
    dynamic: Optional[Tuple[float, float, Dict[str, float]]] = None
    specialization: Optional[Dict[str, object]] = None
    #: The chooser's per-kernel variant map (kernel name -> variant); the
    #: kernels' own ``variant`` fields are authoritative for execution, this
    #: is the replayable record (see ``apply_kernel_choices``).
    kernel_choices: Optional[Dict[str, str]] = None
    #: 2 = kernel descriptors carry ``variant``/``quant`` (version-1 specs
    #: still load; see ``_build_kernel``).
    #: 3 = quant payloads additionally carry the packed int16 rows
    #: (``weight_qi``) the int8spd datapath streams, and variants may name
    #: the v3 lowerings (``packed``/``winograd``/``int8spd``) whose derived
    #: weight layouts (Winograd transform, L2 column panels) are rebuilt
    #: lazily in the worker rather than serialized.  Older specs still load:
    #: every v3 field degrades to a lazy derivation.
    version: int = 3

    # ----------------------------------------------------------------- capture --
    @classmethod
    def from_plan(cls, plan: EnginePlan) -> "PlanSpec":
        from repro.engine.specialize import SpecializedEnginePlan

        dynamic = None
        if plan.dynamic is not None:
            dynamic = (
                plan.dynamic.gate,
                plan.dynamic.default_crossover,
                dict(plan.dynamic.crossover),
            )
        specialization = None
        if isinstance(plan, SpecializedEnginePlan):
            specialization = {
                "source_task": plan.source_task,
                "dead_threshold": plan.dead_threshold,
                "compact_reduction": plan.compact_reduction,
                "live_channels": {
                    layer: np.array(live) for layer, live in plan.live_channels.items()
                },
                "dense_macs_per_image": plan.dense_macs_per_image,
                "specialized_macs_per_image": plan.specialized_macs_per_image,
            }
        return cls(
            dtype=np.dtype(plan.dtype).name,
            input_shape=tuple(plan.input_shape),
            kernels=[_describe_kernel(kernel) for kernel in plan.kernels],
            mask_specs=[_mask_tuple(spec) for spec in plan.mask_specs],
            tasks={name: TaskSpec.from_task(task) for name, task in plan.tasks.items()},
            head_permutation=(
                np.array(plan.head_permutation) if plan.head_permutation is not None else None
            ),
            dynamic=dynamic,
            specialization=specialization,
            kernel_choices=(
                dict(plan.kernel_choices) if getattr(plan, "kernel_choices", None) else None
            ),
        )

    # ------------------------------------------------------------------- build --
    def build(self) -> EnginePlan:
        """Reconstruct an executable plan: fresh kernels, empty workspaces."""
        from repro.engine.specialize import SpecializedEnginePlan

        kernels = [_build_kernel(index, desc) for index, desc in enumerate(self.kernels)]
        mask_specs = [_mask_from_tuple(data) for data in self.mask_specs]
        tasks = {name: spec.build() for name, spec in self.tasks.items()}
        dynamic = None
        if self.dynamic is not None:
            gate, default_crossover, crossover = self.dynamic
            dynamic = DynamicSparseConfig(
                gate=gate, default_crossover=default_crossover, crossover=dict(crossover)
            )
        common = dict(
            dtype=np.dtype(self.dtype),
            input_shape=tuple(self.input_shape),
            kernels=kernels,
            mask_specs=mask_specs,
            tasks=tasks,
            head_permutation=(
                np.array(self.head_permutation) if self.head_permutation is not None else None
            ),
            dynamic=dynamic,
            # getattr: version-1 pickles predate the field entirely.
            kernel_choices=(
                dict(self.kernel_choices)
                if getattr(self, "kernel_choices", None)
                else None
            ),
        )
        if self.specialization is None:
            return EnginePlan(**common)
        extra = self.specialization
        return SpecializedEnginePlan(
            **common,
            source_task=extra["source_task"],
            dead_threshold=extra["dead_threshold"],
            compact_reduction=extra["compact_reduction"],
            live_channels={
                layer: np.array(live) for layer, live in extra["live_channels"].items()
            },
            dense_macs_per_image=extra["dense_macs_per_image"],
            specialized_macs_per_image=extra["specialized_macs_per_image"],
        )


@dataclass
class PlanSetSpec:
    """One picklable snapshot of a whole serving plan set.

    The unit the process-sharded runtime ships to a worker in *every*
    situation that (re)builds plans — initial launch, a two-phase hot-swap,
    and a supervisor **restart** of a crashed worker.  Capturing the dense
    plan and the per-task specialized plans together means the restart path
    cannot drift from the swap path: a respawned shard rebuilds from exactly
    the spec the committed generation shipped, so it rejoins the fleet on the
    same plans every live shard is serving.
    """

    plan: PlanSpec
    specialized: Dict[str, PlanSpec]

    @classmethod
    def capture(cls, plan: EnginePlan, specialized: Dict[str, EnginePlan]) -> "PlanSetSpec":
        return cls(
            plan=PlanSpec.from_plan(plan),
            specialized={
                name: PlanSpec.from_plan(spec) for name, spec in specialized.items()
            },
        )

    def build_all(self) -> Tuple[EnginePlan, Dict[str, EnginePlan]]:
        """Reconstruct (dense plan, per-task specialized plans) — fresh kernels."""
        return (
            self.plan.build(),
            {name: spec.build() for name, spec in self.specialized.items()},
        )
