"""Measured-sparsity bookkeeping for the inference engine.

Every masked kernel reports the zero fraction it actually produced for each
micro-batch.  The recorder aggregates those measurements per (task, layer) and
exports them in the two forms the hardware model consumes:

* a :class:`~repro.hardware.scenario.LayerSparsityProfile` built from the
  *measured* zero fractions (instead of the paper's static Table II), and
* the processed request order as a list of
  :class:`~repro.hardware.scenario.InferencePass` entries, which is exactly
  the schedule the systolic-array simulator charges parameter reloads against.

This is the bridge that lets energy/throughput estimates be driven by real
engine runs: ``simulator.run(shapes, recorder.schedule(), recorder.to_profile(),
mime_config())``.
"""

from __future__ import annotations

import threading
from typing import Dict, List

import numpy as np

from repro.hardware.scenario import InferencePass, LayerSparsityProfile
from repro.utils.ratios import fraction_saved


class SparsityRecorder:
    """Accumulates per-(task, layer) achieved sparsity, weighted by images.

    Recording is guarded by a lock so the serving runtime's worker threads
    can share one recorder: read-modify-write accumulation would otherwise
    race between concurrent micro-batches.

    ``channel_tracking=True`` additionally accumulates **per-channel** live
    counts from every masked kernel (the hook the kernels feed is only
    exposed when tracking is on, so the per-channel reduction costs nothing
    otherwise).  The accumulated counts export as a live
    :class:`~repro.engine.calibrate.CalibrationProfile` via
    :meth:`survival_profile` — the signal the online recalibration loop
    watches for drift against the profile a model was specialized from.
    """

    def __init__(self, channel_tracking: bool = False) -> None:
        self._totals: Dict[str, Dict[str, float]] = {}
        self._counts: Dict[str, Dict[str, int]] = {}
        self._passes: List[InferencePass] = []
        self._dense_macs = 0
        self._effective_macs = 0
        self._channel_counts: Dict[str, Dict[str, object]] = {}
        self._channel_slots: Dict[str, Dict[str, int]] = {}
        self._variants: Dict[str, Dict[str, int]] = {}
        self._lock = threading.Lock()
        self.channel_tracking = channel_tracking
        if channel_tracking:
            # The masked kernels look this attribute up with getattr, so the
            # per-channel accumulation only happens when it is exposed.
            self.record_channels = self._record_channels

    # ------------------------------------------------------------- recording --
    def record(self, task: str, layer_name: str, sparsity: float, num_images: int) -> None:
        """Add one micro-batch's measured sparsity for ``layer_name``."""
        if not 0.0 <= sparsity <= 1.0:
            raise ValueError(f"sparsity {sparsity} outside [0, 1]")
        if num_images <= 0:
            raise ValueError("num_images must be positive")
        with self._lock:
            totals = self._totals.setdefault(task, {})
            counts = self._counts.setdefault(task, {})
            totals[layer_name] = totals.get(layer_name, 0.0) + sparsity * num_images
            counts[layer_name] = counts.get(layer_name, 0) + num_images

    def record_pass(self, task: str, num_images: int) -> None:
        """Append ``num_images`` schedule slots for ``task`` in processed order."""
        with self._lock:
            self._passes.extend(InferencePass(task) for _ in range(num_images))

    def record_macs(self, dense_macs: int, effective_macs: int) -> None:
        """Add one run's dense-baseline and actually-executed MAC counts.

        ``dense_macs`` is what an unspecialized dense plan would have executed
        for the same images; ``effective_macs`` is what the (possibly
        specialized, possibly dynamically compacted) plan really did.
        """
        if dense_macs < 0 or effective_macs < 0:
            raise ValueError("MAC counts must be non-negative")
        with self._lock:
            self._dense_macs += int(dense_macs)
            self._effective_macs += int(effective_macs)

    def record_variant(self, variant: str, macs: int, nbytes: int) -> None:
        """Add one kernel call's *physical* work under its executed variant.

        The kernels feed this hook (discovered with ``getattr``, so recorder
        ducks without it pay nothing) once per call with the MACs the
        variant physically executed and a modelled bytes-touched figure — see
        :func:`repro.engine.kernels.record_variant_traffic` for why these
        differ from the semantic :meth:`record_macs` totals.
        """
        if macs < 0 or nbytes < 0:
            raise ValueError("variant totals must be non-negative")
        with self._lock:
            entry = self._variants.setdefault(variant, {"calls": 0, "macs": 0, "bytes": 0})
            entry["calls"] += 1
            entry["macs"] += int(macs)
            entry["bytes"] += int(nbytes)

    def _record_channels(
        self, task: str, layer_name: str, live_counts, num_slots: int
    ) -> None:
        """Add one micro-batch's per-channel live-slot counts (tracking on).

        A hot-swap can change a layer's compacted channel width mid-window
        (re-specialization keeps a different live set); counts measured on
        the old geometry are meaningless against the new one, so a width
        change restarts that layer's accumulation instead of summing
        incompatible axes.
        """
        with self._lock:
            counts = self._channel_counts.setdefault(task, {})
            slots = self._channel_slots.setdefault(task, {})
            live = np.asarray(live_counts, dtype=np.int64)
            if layer_name in counts and counts[layer_name].shape == live.shape:
                counts[layer_name] = counts[layer_name] + live
                slots[layer_name] += int(num_slots)
            else:
                counts[layer_name] = live.copy()
                slots[layer_name] = int(num_slots)

    def reset(self) -> None:
        with self._lock:
            self._totals.clear()
            self._counts.clear()
            self._passes.clear()
            self._dense_macs = 0
            self._effective_macs = 0
            self._channel_counts.clear()
            self._channel_slots.clear()
            self._variants.clear()

    # ----------------------------------------------------- cross-process merge --
    def snapshot(self) -> Dict[str, object]:
        """Plain-data copy of every accumulator, safe to pickle across processes.

        The sharded serving runtime's worker processes each keep a private
        recorder and ship its snapshot back at shutdown; the parent folds them
        into one recorder with :meth:`merge_snapshot`, so
        ``hardware_report``/``mac_totals`` cover the whole process fleet.
        """
        with self._lock:
            return {
                "totals": {task: dict(layers) for task, layers in self._totals.items()},
                "counts": {task: dict(layers) for task, layers in self._counts.items()},
                "passes": [entry.task for entry in self._passes],
                "dense_macs": self._dense_macs,
                "effective_macs": self._effective_macs,
                "channel_counts": {
                    task: {name: np.array(counts) for name, counts in layers.items()}
                    for task, layers in self._channel_counts.items()
                },
                "channel_slots": {
                    task: dict(layers) for task, layers in self._channel_slots.items()
                },
                "variants": {name: dict(entry) for name, entry in self._variants.items()},
            }

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold another recorder's :meth:`snapshot` into this one.

        Sparsity totals and MAC counts add exactly; the schedule is
        concatenated, which preserves per-worker processing order (each worker
        is one accelerator pipeline — the same convention the thread runtime's
        per-worker task-switch accounting uses).
        """
        with self._lock:
            for task, layers in snapshot["totals"].items():
                totals = self._totals.setdefault(task, {})
                for name, value in layers.items():
                    totals[name] = totals.get(name, 0.0) + value
            for task, layers in snapshot["counts"].items():
                counts = self._counts.setdefault(task, {})
                for name, value in layers.items():
                    counts[name] = counts.get(name, 0) + value
            self._passes.extend(InferencePass(task) for task in snapshot["passes"])
            self._dense_macs += int(snapshot["dense_macs"])
            self._effective_macs += int(snapshot["effective_macs"])
            replaced = set()
            for task, layers in snapshot.get("channel_counts", {}).items():
                counts = self._channel_counts.setdefault(task, {})
                for name, value in layers.items():
                    value = np.asarray(value, dtype=np.int64)
                    if name in counts and counts[name].shape == value.shape:
                        counts[name] = counts[name] + value
                    else:
                        # Width changed across a swap: keep the newer geometry
                        # (the matching slot total is replaced below, too).
                        counts[name] = value.copy()
                        replaced.add((task, name))
            for task, layers in snapshot.get("channel_slots", {}).items():
                slots = self._channel_slots.setdefault(task, {})
                for name, value in layers.items():
                    if (task, name) in replaced:
                        slots[name] = int(value)
                    else:
                        slots[name] = slots.get(name, 0) + int(value)
            for name, entry in snapshot.get("variants", {}).items():
                totals = self._variants.setdefault(name, {"calls": 0, "macs": 0, "bytes": 0})
                for key in ("calls", "macs", "bytes"):
                    totals[key] += int(entry.get(key, 0))

    # --------------------------------------------------------------- queries --
    def tasks(self) -> List[str]:
        with self._lock:
            return list(self._totals)

    def num_images(self) -> int:
        with self._lock:
            return len(self._passes)

    def per_layer(self, task: str) -> Dict[str, float]:
        """Mean measured sparsity per layer for ``task``."""
        with self._lock:
            if task not in self._totals:
                raise KeyError(f"no measurements recorded for task '{task}'")
            totals, counts = self._totals[task], self._counts[task]
            return {name: totals[name] / counts[name] for name in totals}

    def mac_totals(self) -> tuple[int, int]:
        """``(dense, effective)`` MAC totals recorded so far."""
        with self._lock:
            return self._dense_macs, self._effective_macs

    def mac_reduction(self) -> float:
        """Fraction of dense MACs avoided across all recorded runs."""
        dense, effective = self.mac_totals()
        return fraction_saved(dense, effective)

    def variant_totals(self) -> Dict[str, Dict[str, int]]:
        """Physical work per executed kernel variant: calls, MACs, bytes.

        Keys are variant names (``im2col``, ``blocked``, ``packed``,
        ``direct``, ``winograd``, ``int8``, ``int8spd``, ``dense``,
        ``dynamic``, ``pool-reshape``, ``pool-views``); values carry what
        each variant actually executed — the observability face of the
        per-layer kernel chooser.  ``winograd`` reports its genuinely
        reduced multiply count (16 MACs per 2x2 output tile where the
        im2col lowering spends 36).
        """
        with self._lock:
            return {name: dict(entry) for name, entry in self._variants.items()}

    def mean_sparsity(self, task: str) -> float:
        per_layer = self.per_layer(task)
        if not per_layer:
            return 0.0
        return sum(per_layer.values()) / len(per_layer)

    def survival_profile(self):
        """Per-channel survival measured on live traffic, as a calibration profile.

        Requires ``channel_tracking=True`` at construction (otherwise the
        kernels never fed the per-channel accumulators).  The returned
        :class:`~repro.engine.calibrate.CalibrationProfile` is directly
        comparable to — and substitutable for — an offline
        :func:`~repro.engine.calibrate.calibrate_plan` profile, which is how
        the online recalibration loop re-specializes from what traffic
        actually looks like.
        """
        from repro.engine.calibrate import CalibrationProfile

        if not self.channel_tracking:
            raise RuntimeError(
                "survival_profile() needs a recorder built with channel_tracking=True"
            )
        with self._lock:
            survival = {
                task: {
                    name: np.asarray(counts, dtype=float)
                    / max(1, self._channel_slots[task][name])
                    for name, counts in layers.items()
                }
                for task, layers in self._channel_counts.items()
            }
            num_images = {}
            for entry in self._passes:
                num_images[entry.task] = num_images.get(entry.task, 0) + 1
        return CalibrationProfile(survival=survival, num_images=num_images)

    # --------------------------------------------------------- hardware glue --
    def to_profile(self, default_sparsity: float = 0.0) -> LayerSparsityProfile:
        """Export the measurements as a simulator-ready sparsity profile.

        Layers the engine never masked (e.g. the task head) fall back to
        ``default_sparsity``, matching :class:`LayerSparsityProfile` semantics.
        """
        return LayerSparsityProfile(
            per_task={task: self.per_layer(task) for task in self.tasks()},
            default_sparsity=default_sparsity,
        )

    def schedule(self) -> List[InferencePass]:
        """The processed image order, one :class:`InferencePass` per image."""
        with self._lock:
            return list(self._passes)
