"""Per-task calibration of a compiled plan's channel survival statistics.

The paper's thesis is that per-task threshold masks prune *structurally*:
whole output channels of a layer die for one child task while staying alive
for another.  :func:`calibrate_plan` measures exactly that — it runs a seeded
batch per task through an existing :class:`~repro.engine.plan.EnginePlan` and
records, for every masked layer, the fraction of (image, position) slots in
which each output channel survived its threshold.  The resulting
:class:`CalibrationProfile` is the input to
:func:`repro.engine.specialize.specialize_plan`, which drops the channels the
profile proves dead.

Two producers exist for the same profile format:

* :func:`calibrate_plan` — measured on the compiled inference plan itself
  (the authoritative source: it sees exactly the kernels that will serve);
* :func:`profile_from_network` — exported from the *training* network's
  threshold masks via :func:`repro.mime.sparsity.measure_channel_survival`,
  for deployments that calibrate before compiling.

Profiles serialise to JSON (:meth:`CalibrationProfile.save` /
:meth:`CalibrationProfile.load`) so a calibration run can ship alongside the
trained parameters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np


class ChannelSurvivalRecorder:
    """Recorder that captures per-channel survival counts from masked kernels.

    Quacks like a :class:`~repro.engine.stats.SparsityRecorder` for the
    ``record`` call every masked kernel makes, and additionally exposes
    ``record_channels`` — the hook the kernels feed with per-channel live-slot
    counts.  Calibration is a single-threaded offline pass, so no locking.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, Dict[str, np.ndarray]] = {}
        self._slots: Dict[str, Dict[str, int]] = {}
        self._images: Dict[str, int] = {}
        self._first_layer: Dict[str, str] = {}
        self._ranges: Dict[str, Dict[str, float]] = {}

    # -- kernel-facing hooks -------------------------------------------------
    def record(self, task: str, layer_name: str, sparsity: float, num_images: int) -> None:
        # Every masked layer reports once per batch; count the batch's images
        # only when the first masked layer of the pass reports them.
        first = self._first_layer.setdefault(task, layer_name)
        if layer_name == first:
            self._images[task] = self._images.get(task, 0) + num_images

    def record_channels(
        self, task: str, layer_name: str, live_counts: np.ndarray, num_slots: int
    ) -> None:
        """Add one micro-batch's per-channel live-slot counts for ``layer_name``."""
        counts = self._counts.setdefault(task, {})
        slots = self._slots.setdefault(task, {})
        if layer_name in counts:
            counts[layer_name] = counts[layer_name] + np.asarray(live_counts, dtype=np.int64)
            slots[layer_name] += int(num_slots)
        else:
            counts[layer_name] = np.asarray(live_counts, dtype=np.int64).copy()
            slots[layer_name] = int(num_slots)

    def record_range(self, task: str, kernel_name: str, absmax: float) -> None:
        """Track the peak input activation magnitude seen by a GEMM kernel.

        The GEMM kernels feed this hook (discovered with ``getattr``, so
        serving recorders that do not expose it pay nothing) with
        ``abs(x).max()`` of every batch they run; the accumulated per-task
        maxima become :attr:`CalibrationProfile.ranges` — the activation
        scales of the int8 variant (:func:`repro.engine.kernels.
        quantize_gemm`).
        """
        ranges = self._ranges.setdefault(task, {})
        ranges[kernel_name] = max(ranges.get(kernel_name, 0.0), float(absmax))

    # -- export --------------------------------------------------------------
    def to_profile(self) -> "CalibrationProfile":
        survival = {
            task: {
                layer: self._counts[task][layer] / max(1, self._slots[task][layer])
                for layer in self._counts[task]
            }
            for task in self._counts
        }
        return CalibrationProfile(
            survival=survival,
            num_images=dict(self._images),
            ranges={task: dict(ranges) for task, ranges in self._ranges.items()},
        )


@dataclass
class CalibrationProfile:
    """Per-task, per-layer channel survival rates measured by calibration.

    ``survival[task][layer]`` is a float array with one entry per output
    channel (convolution) or feature (fully-connected), each the fraction of
    calibration slots in which that channel survived the task's threshold.
    0.0 means the channel never fired for this task — a *dead channel* the
    specializer may remove.
    """

    survival: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)
    num_images: Dict[str, int] = field(default_factory=dict)
    #: ``ranges[task][kernel_name]`` — peak |activation| entering each GEMM
    #: kernel during calibration; the input scales of the engine's int8
    #: variant.  Empty for profiles produced before range recording existed
    #: (and for :func:`profile_from_network`, which never runs the kernels).
    ranges: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def tasks(self) -> List[str]:
        return list(self.survival)

    def layers(self, task: str) -> List[str]:
        return list(self._task(task))

    def rates(self, task: str, layer: str) -> np.ndarray:
        layers = self._task(task)
        if layer not in layers:
            raise KeyError(f"no calibration for layer '{layer}' of task '{task}'")
        return layers[layer]

    def live_mask(self, task: str, layer: str, dead_threshold: float = 0.0) -> np.ndarray:
        """Boolean per-channel mask: True where survival exceeds the threshold."""
        if not 0.0 <= dead_threshold < 1.0:
            raise ValueError("dead_threshold must lie in [0, 1)")
        return self.rates(task, layer) > dead_threshold

    def dead_channels(self, task: str, layer: str, dead_threshold: float = 0.0) -> int:
        return int(np.count_nonzero(~self.live_mask(task, layer, dead_threshold)))

    def _task(self, task: str) -> Dict[str, np.ndarray]:
        if task not in self.survival:
            raise KeyError(
                f"no calibration recorded for task '{task}'; calibrated: {self.tasks()}"
            )
        return self.survival[task]

    # -- serialisation -------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "survival": {
                task: {layer: np.asarray(rates, dtype=float).tolist() for layer, rates in layers.items()}
                for task, layers in self.survival.items()
            },
            "num_images": self.num_images,
        }
        if self.ranges:
            payload["ranges"] = {
                task: {name: float(value) for name, value in ranges.items()}
                for task, ranges in self.ranges.items()
            }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CalibrationProfile":
        payload = json.loads(text)
        return cls(
            survival={
                task: {layer: np.asarray(rates, dtype=float) for layer, rates in layers.items()}
                for task, layers in payload["survival"].items()
            },
            num_images={task: int(n) for task, n in payload.get("num_images", {}).items()},
            ranges={
                task: {name: float(value) for name, value in ranges.items()}
                for task, ranges in payload.get("ranges", {}).items()
            },
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CalibrationProfile":
        return cls.from_json(Path(path).read_text())


def calibrate_plan(
    plan,
    tasks: Optional[Sequence[str]] = None,
    batch_size: int = 32,
    seed: int = 0,
    images: Optional[Dict[str, np.ndarray]] = None,
) -> CalibrationProfile:
    """Run one calibration batch per task through ``plan``; measure survival.

    ``images`` maps task name to an NCHW batch; tasks without an entry (or
    all tasks when omitted) get a seeded standard-normal batch of
    ``batch_size`` images, so calibration is reproducible by construction.
    The pass runs on the plan's own default workspace pool and records
    nothing into serving statistics.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    names = list(tasks) if tasks is not None else plan.task_names()
    if not names:
        raise ValueError("the plan has no tasks to calibrate")
    recorder = ChannelSurvivalRecorder()
    rng = np.random.default_rng(seed)
    for name in names:
        if images is not None and name in images:
            batch = np.asarray(images[name])
        else:
            batch = rng.normal(size=(batch_size,) + tuple(plan.input_shape))
        plan.run(batch, name, recorder=recorder)
    return recorder.to_profile()


def profile_from_network(
    network,
    images: Dict[str, np.ndarray] | np.ndarray,
    tasks: Optional[Sequence[str]] = None,
) -> CalibrationProfile:
    """Build a :class:`CalibrationProfile` from the *training* network's masks.

    The mime-side export path: runs ``network.forward`` per task and reads
    per-channel survival off the threshold masks
    (:func:`repro.mime.sparsity.measure_channel_survival`).  ``images`` is
    either one batch shared by every task or a per-task mapping.
    """
    from repro.mime.sparsity import measure_channel_survival

    names = list(tasks) if tasks is not None else network.task_names()
    if not names:
        raise ValueError("the network has no registered tasks")
    survival: Dict[str, Dict[str, np.ndarray]] = {}
    num_images: Dict[str, int] = {}
    for name in names:
        batch = images[name] if isinstance(images, dict) else images
        batch = np.asarray(batch)
        survival[name] = measure_channel_survival(network, batch, task=name)
        num_images[name] = int(batch.shape[0])
    return CalibrationProfile(survival=survival, num_images=num_images)
