"""Kernel variants for the fused GEMM engine, plus the per-layer chooser.

The compiled plan's default execution path (``ConvGemmMaskKernel.run``'s
im2col → one monolithic GEMM → ``apply_threshold_mask``) is simple and
bit-stable, but it is not always the fastest way to run a layer on a given
machine.  This module adds alternative lowerings of the *same* layer
semantics, selectable per kernel instance via its ``variant`` attribute:

Convolutions (``ConvGemmMaskKernel``)
  * ``"im2col"`` (default) — the original path, untouched, so existing plans
    behave exactly as before and the dynamic row-gather fast path keeps its
    bit-exactness story.
  * ``"blocked"`` — cache-blocked fused GEMM: images are processed in blocks
    whose im2col panel fits in cache (:data:`_COLS_BLOCK_BYTES`), the panel
    is built with one long-run strided copy per kernel row
    (:func:`copy_window_strips` — ``k`` copies of ``k*C_in``-wide runs
    instead of ``k*k`` copies of ``C_in``-wide runs), and the bias +
    threshold-mask epilogue is applied to each output tile while it is still
    cache-hot.  The panel is **bit-identical** to the monolithic im2col
    matrix and each block's GEMM sees the same per-row reduction order, so
    this variant reproduces the default path bit for bit.
  * ``"direct"`` — im2col-free shift-and-add convolution: one full-plane
    GEMM per filter tap, accumulated into the output through shifted
    ``as_strided``-style window views.  No ``cols`` workspace exists at all.
    1x1/stride-1 layers degenerate to a single GEMM over the input itself
    (bit-identical to im2col, whose column matrix *is* the input); for k>1
    the per-pixel reduction is regrouped from ``(ky, kx, c)`` order into
    per-tap partial sums, so the contract is ULP-level (``allclose``), not
    bitwise.  Eligible for stride-1 layers (the dominant VGG shapes).
  * ``"int8"`` — opt-in symmetric-quantized inference (see
    :class:`QuantizedGemm`): activations are quantized on the fly with a
    per-kernel scale calibrated from :class:`~repro.engine.calibrate.
    CalibrationProfile` activation ranges, weights carry per-output-channel
    scales, the integer GEMM accumulates exactly (values are stored in a
    float container wide enough that every int32-range accumulation is
    representable — this machine has no int8 BLAS, so the float unit *is*
    the exact integer datapath), and the epilogue dequantizes, adds the
    float bias and applies the threshold mask.  Accuracy contract: declared
    tolerance measured by the differential suite, not bit-exactness.

Fully-connected layers (``LinearMaskKernel``)
  ``"dense"`` (default, original path), ``"blocked"`` (row-blocked GEMM with
  the bias+mask epilogue fused per block — bit-identical), ``"int8"``.

Max pooling (``MaxPoolKernel``)
  ``"reshape"`` (default, original path: reshape-reduce for aligned
  non-overlapping windows) and ``"views"`` (strided-window ``np.maximum``
  cascade — bit-identical, and measurably faster on this machine's
  single-core OpenBLAS build because it avoids the 6-D reduction).

:func:`autotune_kernel_variants` times every eligible variant of every
kernel on synthetic inputs of the kernel's true geometry (through the real
``kernel.run`` entry point, epilogue included) and caches the winning
choices on ``plan.kernel_choices``; :func:`apply_kernel_choices` replays a
cached choice map onto any plan whose kernels share names — which is how
choices survive :class:`~repro.engine.planspec.PlanSpec` round-trips into
spawned workers and re-specialization during online recalibration.

This module deliberately imports nothing from :mod:`repro.engine.plan`
(``plan.py`` imports *us*); every entry point takes the kernel object and
duck-types against the attributes all plan kernels carry (``uid``, ``kind``,
``variant``, geometry, ``mask``, ``dense_macs_per_image``...).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
from numpy.lib.stride_tricks import as_strided

__all__ = [
    "CONV_VARIANTS",
    "LINEAR_VARIANTS",
    "POOL_VARIANTS",
    "QuantizedGemm",
    "quantize_gemm",
    "quantize_plan_kernels",
    "variant_candidates",
    "set_kernel_variant",
    "force_kernel_variant",
    "apply_kernel_choices",
    "autotune_kernel_variants",
    "apply_threshold_mask",
    "report_mask_stats",
    "record_variant_traffic",
]

#: Target byte size of one cache-blocked im2col panel.  512 KB keeps the
#: panel + the weight panel + the output tile inside a typical shared L2/L3
#: slice while staying large enough that BLAS still runs full-width panels.
_COLS_BLOCK_BYTES = 1 << 19

CONV_VARIANTS = ("im2col", "blocked", "direct", "int8")
LINEAR_VARIANTS = ("dense", "blocked", "int8")
POOL_VARIANTS = ("reshape", "views")

#: int8 symmetric quantization range (zero-point-free).
_QMAX = 127.0

#: Guard band of the int8 decision-refinement epilogue, in standard
#: deviations of the per-slot quantization noise.  Output slots whose
#: dequantized value lands within ``guard * sigma`` of the task threshold
#: are recomputed from the retained float weights, so near-threshold mask
#: decisions are exact and quantization error cannot compound through the
#: layer stack (see ``_refine_conv_int8``).
_INT8_GUARD = 8.0


# ---------------------------------------------------------------------------
# Shared epilogue: threshold mask + sparsity reporting.
# ---------------------------------------------------------------------------
def report_mask_stats(
    kernel, task, recorder, ctx, images: int, slots_per_image: int,
    channel_live: Optional[np.ndarray], live: float, mask_size: int,
) -> None:
    """Sparsity-reporting tail shared by every masked-GEMM variant.

    ``live`` is the total number of surviving (image, position, channel)
    slots; ``channel_live`` the per-channel breakdown when the caller
    computed one (required whenever the recorder exposes the
    ``record_channels`` calibration hook).  The recorded sparsity is
    normalised by the layer's **dense** channel count (``kernel.
    dense_channels``) so dense and specialized runs of the same traffic stay
    comparable, while the ``ctx`` gate signal uses the stream's own
    geometry (``mask_size``) — it describes the data the next kernel sees.
    """
    record_channels = getattr(recorder, "record_channels", None) if recorder is not None else None
    if record_channels is not None and channel_live is not None:
        record_channels(task.name, kernel.mask.layer_name, channel_live, images * slots_per_image)
    if recorder is not None:
        dense_slots = images * slots_per_image * kernel.dense_channels
        recorder.record(task.name, kernel.mask.layer_name, 1.0 - live / dense_slots, images)
    if ctx is not None:
        ctx.prev_sparsity = 1.0 - live / mask_size


def apply_threshold_mask(
    kernel, gemm: np.ndarray, task, ws, recorder, ctx, slots_per_image: int
) -> None:
    """Monolithic threshold-mask step of the fused GEMM kernels.

    ``gemm`` is the (batch, ..., channels) pre-activation view; the mask
    buffer comes from the workspace pool and is rewritten in place with
    ``np.greater_equal(..., out=...)``, so steady-state serving allocates
    nothing here.  Survival statistics flow through
    :func:`report_mask_stats`; the blocked variants skip this function and
    mask per cache-hot tile instead, feeding the same reporting tail with
    their accumulated counts.
    """
    n = gemm.shape[0]
    mask = ws.get(kernel.uid, "mask", n, gemm.shape, np.bool_)
    np.greater_equal(gemm, task.thresholds[kernel.mask.slot], out=mask)
    gemm *= mask
    survival_needed = recorder is not None or (ctx is not None and ctx.dynamic is not None)
    if survival_needed:
        if recorder is not None and getattr(recorder, "record_channels", None) is not None:
            # Per-channel live-slot counts (channels are the last axis); the
            # scalar total falls out of them for free.
            channel_live = mask.sum(axis=tuple(range(mask.ndim - 1)), dtype=np.int64)
            live = float(channel_live.sum())
        else:
            channel_live = None
            live = float(np.count_nonzero(mask))
        report_mask_stats(
            kernel, task, recorder, ctx, n, slots_per_image, channel_live, live, mask.size
        )
    elif ctx is not None:
        ctx.prev_sparsity = 0.0


# ---------------------------------------------------------------------------
# Per-variant MAC/byte accounting (physical traffic, not semantic MACs).
# ---------------------------------------------------------------------------
def record_variant_traffic(recorder, variant: str, macs: int, nbytes: int) -> None:
    """Feed a recorder's optional ``record_variant`` hook (physical totals).

    The :class:`~repro.engine.plan.RunContext` MAC counters stay *semantic*
    (rows x reduction x width of the layer's math) so MAC-reduction ratios
    remain comparable across variants; this hook carries what the variant
    physically executed — e.g. the direct path's per-tap full-plane GEMMs
    run ~``(H+2p)(W+2p)/(HW)`` more MACs than the im2col lowering of the
    same layer — plus a simple bytes-touched model of its memory traffic.
    """
    if recorder is None:
        return
    hook = getattr(recorder, "record_variant", None)
    if hook is not None:
        hook(variant, int(macs), int(nbytes))


def conv_variant_traffic(kernel, n: int, variant: str) -> tuple:
    """(physical MACs, modelled bytes touched) of one conv batch."""
    item = kernel.weight_t.dtype.itemsize
    c_in, h, w = kernel.in_shape
    c_out, h_out, w_out = kernel.out_shape
    k, s, p = kernel.kernel_size, kernel.stride, kernel.padding
    rows = n * h_out * w_out
    reduction = kernel.weight_t.shape[0]
    plane = n * (h + 2 * p) * (w + 2 * p)
    input_bytes = item * n * h * w * c_in + (item * plane * c_in if p > 0 else 0)
    weight_bytes = item * reduction * c_out
    out_bytes = item * rows * c_out
    mask_bytes = (2 * rows * c_out + item * rows * c_out) if kernel.mask is not None else 0
    if variant == "direct":
        if k == 1 and p == 0 and s == 1:
            macs = rows * reduction * c_out
            nbytes = input_bytes + weight_bytes + out_bytes + mask_bytes
        else:
            taps = k * k
            macs = taps * plane * c_in * c_out
            # per tap: read the plane, write the tap output, accumulate out
            nbytes = input_bytes + weight_bytes + mask_bytes + taps * item * (
                plane * c_in + plane * c_out + 2 * rows * c_out
            )
        return macs, nbytes
    macs = rows * reduction * c_out
    # im2col/blocked/int8: cols written once and re-read by the GEMM.
    cols_bytes = 2 * item * rows * reduction
    nbytes = input_bytes + cols_bytes + weight_bytes + out_bytes + mask_bytes
    if variant == "int8":
        nbytes += item * plane * c_in  # the extra quantize pass
    return macs, nbytes


def linear_variant_traffic(kernel, n: int, variant: str) -> tuple:
    """(physical MACs, modelled bytes touched) of one FC batch."""
    item = kernel.weight_t.dtype.itemsize
    reduction, width = kernel.weight_t.shape
    macs = n * reduction * width
    nbytes = item * (n * reduction + reduction * width + n * width)
    if kernel.mask is not None:
        nbytes += 2 * n * width + item * n * width
    if variant == "int8":
        nbytes += item * n * reduction
    return macs, nbytes


def pool_variant_traffic(kernel, x: np.ndarray, out: np.ndarray) -> tuple:
    return 0, x.nbytes + out.nbytes


# ---------------------------------------------------------------------------
# im2col panel construction via overlapping window strips.
# ---------------------------------------------------------------------------
def copy_window_strips(
    cols: np.ndarray, src: np.ndarray, n: int,
    h_out: int, w_out: int, k: int, s: int, c_in: int,
) -> None:
    """Fill an im2col panel with ``k`` long-run strided copies.

    Adjacent output positions' windows overlap in memory: for a fixed kernel
    row ``ky``, the ``(kx, c)`` face of the window at output column ``j`` is
    the *contiguous* run of ``k*c_in`` values starting at input pixel
    ``(ky + i*s, j*s)``.  One ``as_strided`` view per ``ky`` therefore
    exposes all of that row's window faces at once, and copying it lands
    ``k*c_in``-wide runs instead of the naive double loop's ``c_in``-wide
    runs — same panel, bit for bit, at a fraction of the copy overhead.

    ``src`` must be C-contiguous NHWC (the padded workspace buffer always
    is); the last window's run ends at input column ``(w_out-1)*s + k <= W``
    by conv geometry, so the view never reads out of bounds.
    """
    sn, sh, sw, sc = src.strides
    shape = (n, h_out, w_out, k * c_in)
    panel = cols.reshape(n, h_out, w_out, k, k * c_in)
    for ky in range(k):
        strip = as_strided(src[:, ky:], shape=shape, strides=(sn, s * sh, s * sw, sc))
        panel[:, :, :, ky, :] = strip


def _padded_input(kernel, x: np.ndarray, ws) -> np.ndarray:
    """The conv source plane: the zero-bordered pad buffer, or ``x`` itself."""
    p = kernel.padding
    if p == 0:
        return x if x.flags["C_CONTIGUOUS"] else np.ascontiguousarray(x)
    n = x.shape[0]
    c_in, h, w = kernel.in_shape
    padded = ws.get(
        kernel.uid, "pad", n, (n, h + 2 * p, w + 2 * p, c_in), kernel.weight_t.dtype
    )
    # The border stays zero from allocation time; only the interior is
    # rewritten (same invariant as the default im2col path).
    padded[:, p : p + h, p : p + w, :] = x
    return padded


# ---------------------------------------------------------------------------
# Convolution variants.
# ---------------------------------------------------------------------------
def run_conv_blocked(kernel, x, task, ws, recorder, ctx):
    """Cache-blocked im2col GEMM with the bias+mask epilogue fused per block.

    Bit-identical to the default path: the strip-copied panel equals the
    monolithic im2col matrix and blocking over *images* never splits a GEMM
    row, so every output element sees the same reduction order.
    """
    n = x.shape[0]
    c_in, _, _ = kernel.in_shape
    c_out, h_out, w_out = kernel.out_shape
    k, s = kernel.kernel_size, kernel.stride
    dtype = kernel.weight_t.dtype
    src = _padded_input(kernel, x, ws)
    spi = h_out * w_out
    reduction = kernel.weight_t.shape[0]
    # Round (not floor) to the nearest image count whose panel hits the byte
    # target: a 1.1-panel-sized budget should still pair images up — the
    # measured sweet spot sits at the target, not strictly under it.
    panel_bytes = max(1, spi * reduction * dtype.itemsize)
    block = max(1, min(n, (_COLS_BLOCK_BYTES + panel_bytes // 2) // panel_bytes))

    out = ws.get(kernel.uid, "out", n, (n * spi, c_out), dtype)
    cols = ws.get(kernel.uid, "bcols", block, (block * spi, reduction), dtype)
    survival_needed = recorder is not None or (ctx is not None and ctx.dynamic is not None)
    need_channels = (
        recorder is not None and getattr(recorder, "record_channels", None) is not None
    )
    thresholds = mask = channel_live = None
    live_total = 0
    if kernel.mask is not None:
        thresholds = task.thresholds[kernel.mask.slot]
        mask = ws.get(kernel.uid, "mask", n, (n, spi, c_out), np.bool_)
        if need_channels:
            channel_live = np.zeros(c_out, dtype=np.int64)

    for b0 in range(0, n, block):
        nb = min(n, b0 + block) - b0
        panel = cols[: nb * spi]
        copy_window_strips(panel, src[b0 : b0 + nb], nb, h_out, w_out, k, s, c_in)
        tile = out[b0 * spi : (b0 + nb) * spi]
        np.matmul(panel, kernel.weight_t, out=tile)
        np.add(tile, kernel.bias, out=tile)
        if kernel.mask is not None:
            gemm = tile.reshape(nb, spi, c_out)
            tile_mask = mask[b0 : b0 + nb]
            np.greater_equal(gemm, thresholds, out=tile_mask)
            gemm *= tile_mask
            if channel_live is not None:
                channel_live += tile_mask.sum(axis=(0, 1), dtype=np.int64)
            elif survival_needed:
                live_total += np.count_nonzero(tile_mask)

    if ctx is not None:
        ctx.effective_macs += n * spi * reduction * c_out
        ctx.dense_macs += n * kernel.dense_macs_per_image
    record_variant_traffic(recorder, "blocked", *conv_variant_traffic(kernel, n, "blocked"))
    if kernel.mask is not None:
        if survival_needed:
            live = float(channel_live.sum()) if channel_live is not None else float(live_total)
            report_mask_stats(
                kernel, task, recorder, ctx, n, spi,
                channel_live, live, n * spi * c_out,
            )
        elif ctx is not None:
            ctx.prev_sparsity = 0.0
    elif ctx is not None:
        ctx.prev_sparsity = 0.0
    return out.reshape(n, h_out, w_out, c_out)


def run_conv_direct(kernel, x, task, ws, recorder, ctx):
    """im2col-free shift-and-add convolution (one GEMM per filter tap).

    Each tap's weights form a contiguous ``(C_in, C_out)`` row slice of
    ``weight_t`` (rows are in ``(ky, kx, c)`` order), so the tap GEMM runs
    over the raw padded plane and its output is accumulated into the result
    through a shifted window view — no column matrix is ever materialised.
    1x1/stride-1 collapses to a single GEMM over the input itself and is
    bit-identical to im2col; k>1 regroups the reduction per tap (ULP-level).
    """
    n = x.shape[0]
    c_in, h, w = kernel.in_shape
    c_out, h_out, w_out = kernel.out_shape
    k, s, p = kernel.kernel_size, kernel.stride, kernel.padding
    dtype = kernel.weight_t.dtype
    spi = h_out * w_out
    reduction = kernel.weight_t.shape[0]
    out = ws.get(kernel.uid, "out", n, (n * spi, c_out), dtype)
    src = _padded_input(kernel, x, ws)
    if k == 1 and p == 0 and s == 1:
        np.matmul(src.reshape(n * h * w, c_in), kernel.weight_t, out=out)
    else:
        h2, w2 = h + 2 * p, w + 2 * p
        plane = n * h2 * w2
        tap_out = ws.get(kernel.uid, "tap", n, (plane, c_out), dtype)
        src2d = src.reshape(plane, c_in)
        out4 = out.reshape(n, h_out, w_out, c_out)
        tap4 = tap_out.reshape(n, h2, w2, c_out)
        for tap in range(k * k):
            ky, kx = divmod(tap, k)
            np.matmul(src2d, kernel.weight_t[tap * c_in : (tap + 1) * c_in], out=tap_out)
            shifted = tap4[:, ky : ky + s * h_out : s, kx : kx + s * w_out : s, :]
            if tap == 0:
                np.copyto(out4, shifted)
            else:
                np.add(out4, shifted, out=out4)
    np.add(out, kernel.bias, out=out)

    if ctx is not None:
        ctx.effective_macs += n * spi * reduction * c_out
        ctx.dense_macs += n * kernel.dense_macs_per_image
    record_variant_traffic(recorder, "direct", *conv_variant_traffic(kernel, n, "direct"))
    if kernel.mask is not None:
        apply_threshold_mask(kernel, out.reshape(n, spi, c_out), task, ws, recorder, ctx, spi)
    elif ctx is not None:
        ctx.prev_sparsity = 0.0
    return out.reshape(n, h_out, w_out, c_out)


def _refine_conv_int8(kernel, q, x, cols, out, task, ws, n):
    """Recompute near-threshold int8 conv outputs from the float weights.

    The threshold mask is a hard decision, so a per-slot error of one
    quantization step can flip a channel dead/live and the flip *compounds*
    through every later masked layer — this, not the value noise itself, is
    what dominates int8 accuracy loss on threshold-masked networks.  The
    fix: estimate the per-slot noise sigma from the quantization model
    (input rounding ~ U(-in_scale/2, in_scale/2) against the weight column,
    weight rounding ~ U(-w_scale/2, w_scale/2) against the quantized input
    row), flag slots within ``_INT8_GUARD`` sigmas of the threshold, and
    recompute exactly those slots with the kernel's retained float weights
    via strided window gathers of the float input.  Flagged slots get exact
    values *and* exact decisions; unflagged slots are provably far enough
    from the threshold that their decision is already correct.  Typical
    flagged fraction is a few percent, so the extra float MACs are noise
    next to the layer GEMM.
    """
    c_in, h, w = kernel.in_shape
    c_out, h_out, w_out = kernel.out_shape
    k, s, p = kernel.kernel_size, kernel.stride, kernel.padding
    spi = h_out * w_out
    weight_t = kernel.weight_t
    thresholds = task.thresholds[kernel.mask.slot]
    row_sumsq = np.einsum("ij,ij->i", cols, cols)
    w_sumsq = np.einsum("ij,ij->j", weight_t, weight_t)
    variance = (q.in_scale ** 2 / 12.0) * (
        (q.w_scale.astype(np.float64) ** 2) * row_sumsq.reshape(n, spi, 1) + w_sumsq
    )
    out3 = out.reshape(n, spi, c_out)
    flagged = (out3 - thresholds) ** 2 <= (_INT8_GUARD ** 2) * variance
    img, pos, chan = np.nonzero(flagged)
    if img.size == 0:
        return
    if p:
        fplane = ws.get(kernel.uid, "fpad", n, (n, h + 2 * p, w + 2 * p, c_in), x.dtype)
        fplane[:, p : p + h, p : p + w, :] = x
    else:
        fplane = np.ascontiguousarray(x)
    sn, sh, sw, sc = fplane.strides
    windows = as_strided(
        fplane,
        shape=(n, h_out, w_out, k, k, c_in),
        strides=(sn, s * sh, s * sw, sh, sw, sc),
    )
    # Window layout (ky, kx, c) matches weight_t's row order exactly.
    patches = windows[img, pos // w_out, pos % w_out].reshape(-1, k * k * c_in)
    for c in np.unique(chan):
        rows_c = chan == c
        out3[img[rows_c], pos[rows_c], c] = patches[rows_c] @ weight_t[:, c] + kernel.bias[c]


def run_conv_int8(kernel, x, task, ws, recorder, ctx):
    """Symmetric int8 convolution: quantize → exact integer GEMM → dequantize.

    The padded plane is quantized in place (zero borders map to exactly 0,
    so the zero-from-allocation invariant survives quantization), the panel
    is strip-copied like the blocked path, and the epilogue dequantizes with
    the fused ``in_scale * w_scale[c]`` factors, adds the float bias,
    refines near-threshold slots (:func:`_refine_conv_int8`) and masks.
    Accumulation exactness: see :func:`quantize_gemm`.
    """
    q = kernel.quant
    if q is None:
        raise RuntimeError(
            f"kernel '{kernel.name}' has variant 'int8' but carries no quantized "
            "weights; run quantize_plan_kernels first"
        )
    n = x.shape[0]
    c_in, h, w = kernel.in_shape
    c_out, h_out, w_out = kernel.out_shape
    k, s, p = kernel.kernel_size, kernel.stride, kernel.padding
    dtype = kernel.weight_t.dtype
    acc_dtype = q.weight_q.dtype
    h2, w2 = h + 2 * p, w + 2 * p
    qplane = ws.get(kernel.uid, "qpad", n, (n, h2, w2, c_in), acc_dtype)
    interior = qplane[:, p : p + h, p : p + w, :]
    np.divide(x, q.in_scale, out=interior)
    np.rint(interior, out=interior)
    np.clip(interior, -_QMAX, _QMAX, out=interior)

    spi = h_out * w_out
    rows = n * spi
    reduction = q.weight_q.shape[0]
    cols = ws.get(kernel.uid, "qcols", n, (rows, reduction), acc_dtype)
    copy_window_strips(cols, qplane, n, h_out, w_out, k, s, c_in)
    out = ws.get(kernel.uid, "out", n, (rows, c_out), dtype)
    if acc_dtype == dtype:
        np.matmul(cols, q.weight_q, out=out)
        np.multiply(out, q.scale, out=out)
    else:
        wide = ws.get(kernel.uid, "qacc", n, (rows, c_out), acc_dtype)
        np.matmul(cols, q.weight_q, out=wide)
        np.multiply(wide, q.scale, out=wide)
        out[:] = wide
    np.add(out, kernel.bias, out=out)

    if ctx is not None:
        ctx.effective_macs += rows * reduction * c_out
        ctx.dense_macs += n * kernel.dense_macs_per_image
    record_variant_traffic(recorder, "int8", *conv_variant_traffic(kernel, n, "int8"))
    if kernel.mask is not None:
        _refine_conv_int8(kernel, q, x, cols, out, task, ws, n)
        apply_threshold_mask(kernel, out.reshape(n, spi, c_out), task, ws, recorder, ctx, spi)
    elif ctx is not None:
        ctx.prev_sparsity = 0.0
    return out.reshape(n, h_out, w_out, c_out)


def run_conv_variant(kernel, x, task, ws, recorder, ctx):
    variant = kernel.variant
    if variant == "blocked":
        return run_conv_blocked(kernel, x, task, ws, recorder, ctx)
    if variant == "direct":
        return run_conv_direct(kernel, x, task, ws, recorder, ctx)
    if variant == "int8":
        return run_conv_int8(kernel, x, task, ws, recorder, ctx)
    raise ValueError(f"unknown conv variant '{variant}' on kernel '{kernel.name}'")


# ---------------------------------------------------------------------------
# Fully-connected variants.
# ---------------------------------------------------------------------------
def _linear_epilogue(kernel, out, task, ws, recorder, ctx, n):
    if kernel.mask is not None:
        apply_threshold_mask(kernel, out, task, ws, recorder, ctx, 1)
    else:
        if kernel.relu:
            np.maximum(out, 0.0, out=out)
        if ctx is not None:
            ctx.prev_sparsity = 0.0


def run_linear_blocked(kernel, x, task, ws, recorder, ctx):
    """Row-blocked FC GEMM with the bias+mask epilogue fused per block.

    Sample rows are independent, so blocking them never regroups a
    reduction: bit-identical to the dense path.
    """
    n = x.shape[0]
    reduction, width = kernel.weight_t.shape
    dtype = kernel.weight_t.dtype
    out = ws.get(kernel.uid, "fc", n, (n, width), dtype)
    block = max(1, _COLS_BLOCK_BYTES // max(1, reduction * dtype.itemsize))
    thresholds = task.thresholds[kernel.mask.slot] if kernel.mask is not None else None
    survival_needed = recorder is not None or (ctx is not None and ctx.dynamic is not None)
    mask = channel_live = None
    if kernel.mask is not None:
        mask = ws.get(kernel.uid, "mask", n, (n, width), np.bool_)
        if survival_needed:
            channel_live = np.zeros(width, dtype=np.int64)
    for b0 in range(0, n, block):
        b1 = min(n, b0 + block)
        tile = out[b0:b1]
        np.matmul(x[b0:b1], kernel.weight_t, out=tile)
        np.add(tile, kernel.bias, out=tile)
        if kernel.mask is not None:
            tile_mask = mask[b0:b1]
            np.greater_equal(tile, thresholds, out=tile_mask)
            tile *= tile_mask
            if channel_live is not None:
                channel_live += tile_mask.sum(axis=0, dtype=np.int64)
        elif kernel.relu:
            np.maximum(tile, 0.0, out=tile)
    if ctx is not None:
        ctx.effective_macs += n * reduction * width
        ctx.dense_macs += n * kernel.dense_macs_per_image
    record_variant_traffic(recorder, "blocked", *linear_variant_traffic(kernel, n, "blocked"))
    if kernel.mask is not None:
        if survival_needed:
            report_mask_stats(
                kernel, task, recorder, ctx, n, 1,
                channel_live, float(channel_live.sum()), n * width,
            )
        elif ctx is not None:
            ctx.prev_sparsity = 0.0
    elif ctx is not None:
        ctx.prev_sparsity = 0.0
    return out


def _refine_linear_int8(kernel, q, x, qx, out, task, n):
    """FC counterpart of :func:`_refine_conv_int8` (float input is at hand)."""
    weight_t = kernel.weight_t
    thresholds = task.thresholds[kernel.mask.slot]
    row_sumsq = np.einsum("ij,ij->i", qx, qx)
    w_sumsq = np.einsum("ij,ij->j", weight_t, weight_t)
    variance = (q.in_scale ** 2 / 12.0) * (
        (q.w_scale.astype(np.float64) ** 2) * row_sumsq[:, None] + w_sumsq
    )
    flagged = (out - thresholds) ** 2 <= (_INT8_GUARD ** 2) * variance
    rows, chan = np.nonzero(flagged)
    if rows.size == 0:
        return
    for c in np.unique(chan):
        rows_c = rows[chan == c]
        out[rows_c, c] = x[rows_c] @ weight_t[:, c] + kernel.bias[c]


def run_linear_int8(kernel, x, task, ws, recorder, ctx):
    """Symmetric int8 FC layer (same contract as :func:`run_conv_int8`)."""
    q = kernel.quant
    if q is None:
        raise RuntimeError(
            f"kernel '{kernel.name}' has variant 'int8' but carries no quantized "
            "weights; run quantize_plan_kernels first"
        )
    n = x.shape[0]
    reduction, width = q.weight_q.shape
    dtype = kernel.weight_t.dtype
    acc_dtype = q.weight_q.dtype
    qx = ws.get(kernel.uid, "qin", n, (n, reduction), acc_dtype)
    np.divide(x, q.in_scale, out=qx)
    np.rint(qx, out=qx)
    np.clip(qx, -_QMAX, _QMAX, out=qx)
    out = ws.get(kernel.uid, "fc", n, (n, width), dtype)
    if acc_dtype == dtype:
        np.matmul(qx, q.weight_q, out=out)
        np.multiply(out, q.scale, out=out)
    else:
        wide = ws.get(kernel.uid, "qacc", n, (n, width), acc_dtype)
        np.matmul(qx, q.weight_q, out=wide)
        np.multiply(wide, q.scale, out=wide)
        out[:] = wide
    np.add(out, kernel.bias, out=out)
    if ctx is not None:
        ctx.effective_macs += n * reduction * width
        ctx.dense_macs += n * kernel.dense_macs_per_image
    record_variant_traffic(recorder, "int8", *linear_variant_traffic(kernel, n, "int8"))
    if kernel.mask is not None:
        _refine_linear_int8(kernel, q, x, qx, out, task, n)
    _linear_epilogue(kernel, out, task, ws, recorder, ctx, n)
    return out


def run_linear_variant(kernel, x, task, ws, recorder, ctx):
    variant = kernel.variant
    if variant == "blocked":
        return run_linear_blocked(kernel, x, task, ws, recorder, ctx)
    if variant == "int8":
        return run_linear_int8(kernel, x, task, ws, recorder, ctx)
    raise ValueError(f"unknown linear variant '{variant}' on kernel '{kernel.name}'")


# ---------------------------------------------------------------------------
# int8 quantization.
# ---------------------------------------------------------------------------
@dataclass
class QuantizedGemm:
    """Symmetric per-output-channel quantization of one GEMM's weights.

    ``weight_q`` holds the integer weight values ``round(w / w_scale[c])``
    clipped to ±127, stored in a float container (``float32`` plans whose
    reduction satisfies ``K * 127 * 127 < 2**24`` — every float32 partial
    sum of int8 products is then exactly representable; wider reductions
    are stored/accumulated in ``float64``, exact to ``2**53``).  The host
    BLAS therefore computes the *exact* int32 accumulation an integer
    datapath would, which is what makes the declared accuracy contract a
    function of quantization alone, not of the GEMM.

    ``in_scale`` is the per-kernel activation scale calibrated from
    :class:`~repro.engine.calibrate.CalibrationProfile` ranges;
    ``scale = in_scale * w_scale`` is the fused dequantization factor the
    epilogue multiplies by before adding the float bias.
    """

    weight_q: np.ndarray  # (K, C_out), integer-valued
    w_scale: np.ndarray  # (C_out,)
    in_scale: float
    scale: np.ndarray  # (C_out,) = in_scale * w_scale


def quantize_gemm(weight_t: np.ndarray, in_absmax: float, margin: float = 1.05) -> QuantizedGemm:
    """Quantize one ``(K, C_out)`` weight matrix for a calibrated input range.

    ``margin`` widens the calibrated activation range slightly so serving
    traffic marginally hotter than the calibration batch still lands inside
    the clip range instead of saturating.
    """
    dtype = weight_t.dtype
    in_scale = max(float(in_absmax) * margin, 1e-12) / _QMAX
    w_absmax = np.abs(weight_t).max(axis=0)
    w_scale = np.maximum(w_absmax, 1e-12) / _QMAX
    reduction = weight_t.shape[0]
    exact_f32 = reduction * _QMAX * _QMAX < 2.0**24
    acc_dtype = dtype if (dtype == np.float64 or exact_f32) else np.dtype(np.float64)
    weight_q = np.rint(weight_t / w_scale)
    np.clip(weight_q, -_QMAX, _QMAX, out=weight_q)
    return QuantizedGemm(
        weight_q=np.ascontiguousarray(weight_q, dtype=acc_dtype),
        w_scale=w_scale.astype(dtype),
        in_scale=in_scale,
        scale=(w_scale * in_scale).astype(dtype),
    )


def quantize_plan_kernels(
    plan, profile, margin: float = 1.05, set_variant: bool = True
) -> List[str]:
    """Attach int8 weights to every GEMM kernel of ``plan``; return their names.

    ``profile`` must carry activation ranges for this plan's geometry —
    produced by :func:`~repro.engine.calibrate.calibrate_plan` run on *this*
    plan (a specialized plan's compacted streams see different activations
    than the dense plan, so calibrate the plan you quantize).  The range
    used per kernel is the maximum over the profile's tasks, so one
    quantized plan serves every task.  ``set_variant=False`` attaches the
    weights without switching the kernels over — the chooser can then let
    int8 compete instead of forcing it.

    Composes with dead-channel compaction: specialization preserves kernel
    names and this function reads each kernel's *current* (possibly
    compacted) ``weight_t``, so quantizing a specialized plan quantizes
    exactly the live columns.
    """
    ranges = getattr(profile, "ranges", None) or {}
    quantized: List[str] = []
    for kernel in plan.kernels:
        if getattr(kernel, "kind", None) not in ("conv", "linear"):
            continue
        per_task = [
            task_ranges[kernel.name]
            for task_ranges in ranges.values()
            if kernel.name in task_ranges
        ]
        if not per_task:
            raise KeyError(
                f"profile has no activation range for kernel '{kernel.name}'; "
                "re-run calibrate_plan on this plan (range recording is automatic)"
            )
        kernel.quant = quantize_gemm(kernel.weight_t, max(per_task), margin=margin)
        if set_variant:
            kernel.variant = "int8"
        quantized.append(kernel.name)
    if set_variant and quantized:
        choices = dict(getattr(plan, "kernel_choices", None) or {})
        choices.update({name: "int8" for name in quantized})
        plan.kernel_choices = choices
    return quantized


# ---------------------------------------------------------------------------
# The per-layer kernel chooser.
# ---------------------------------------------------------------------------
def variant_candidates(kernel) -> Sequence[str]:
    """Every variant ``kernel`` is eligible to run, default first."""
    kind = getattr(kernel, "kind", None)
    if kind == "conv":
        candidates = ["im2col", "blocked"]
        if kernel.stride == 1:
            candidates.append("direct")
        if getattr(kernel, "quant", None) is not None:
            candidates.append("int8")
        return candidates
    if kind == "linear":
        candidates = ["dense", "blocked"]
        if getattr(kernel, "quant", None) is not None:
            candidates.append("int8")
        return candidates
    if kind == "pool":
        return list(POOL_VARIANTS)
    return ()


def set_kernel_variant(kernel, variant: str) -> None:
    """Set ``kernel.variant`` after validating eligibility."""
    candidates = variant_candidates(kernel)
    if variant not in candidates:
        name = getattr(kernel, "name", f"#{kernel.index}")
        raise ValueError(
            f"variant '{variant}' is not eligible for kernel '{name}' "
            f"(candidates: {list(candidates)})"
        )
    kernel.variant = variant


def force_kernel_variant(plan, variant: str) -> Dict[str, str]:
    """Set ``variant`` on every kernel eligible for it; return what was set.

    Ineligible kernels keep their current variant (e.g. forcing ``direct``
    leaves strided convs and FC layers alone), so a forced plan is always
    runnable.  Conv/linear naming is unified: forcing ``"im2col"`` resets
    FC kernels to their ``"dense"`` default and vice versa.
    """
    aliases = {"im2col": {"linear": "dense"}, "dense": {"conv": "im2col"}}
    chosen: Dict[str, str] = {}
    for kernel in plan.kernels:
        kind = getattr(kernel, "kind", None)
        wanted = aliases.get(variant, {}).get(kind, variant)
        if wanted in variant_candidates(kernel):
            kernel.variant = wanted
            chosen[kernel.name] = wanted
    plan.kernel_choices = dict(chosen)
    return chosen


def apply_kernel_choices(plan, choices: Dict[str, str], strict: bool = True) -> Dict[str, str]:
    """Replay a chooser's per-kernel choice map onto ``plan`` by kernel name.

    Specialization and :class:`~repro.engine.planspec.PlanSpec` rebuilds
    both preserve kernel names, so a choice map measured on one incarnation
    of a network transfers to the next.  With ``strict=False`` choices a
    kernel is not eligible for (e.g. ``int8`` on a freshly re-specialized
    plan that has not been re-quantized) are skipped instead of raising —
    the mode the online recalibration loop uses.
    """
    applied: Dict[str, str] = {}
    matched = set()
    for kernel in plan.kernels:
        name = getattr(kernel, "name", None)
        if name is None or name not in choices:
            continue
        matched.add(name)
        variant = choices[name]
        if variant not in variant_candidates(kernel):
            if strict:
                set_kernel_variant(kernel, variant)  # raises with the full message
            continue
        kernel.variant = variant
        applied[name] = variant
    unmatched = set(choices) - matched
    if unmatched and strict:
        raise KeyError(
            f"choices name kernels the plan does not have: {sorted(unmatched)}"
        )
    plan.kernel_choices = dict(applied)
    return applied


def autotune_kernel_variants(
    plan,
    batch: int = 8,
    repeats: int = 3,
    seed: int = 0,
    task: Optional[str] = None,
) -> Dict[str, str]:
    """Benchmark every eligible variant per kernel; cache winners on the plan.

    Times the real ``kernel.run`` entry point (epilogue included) on seeded
    synthetic inputs of each kernel's true serving geometry, against a real
    task plan and a scratch workspace pool, so the measured ordering is the
    ordering serving will see.  The winning variant is left set on each
    kernel and the full choice map is stored on ``plan.kernel_choices`` —
    from where :class:`~repro.engine.planspec.PlanSpec` carries it to
    spawned workers and :func:`apply_kernel_choices` replays it after
    re-specialization.

    Choices are geometry-specific: autotune the plan you intend to serve
    (dense and per-task specialized plans each get their own pass), at the
    micro-batch size serving uses.
    """
    if batch <= 0:
        raise ValueError("batch must be positive")
    rng = np.random.default_rng(seed)
    task_name = task if task is not None else plan.task_names()[0]
    task_plan = plan.tasks[task_name]
    pool = plan._workspaces.__class__()
    choices: Dict[str, str] = {}
    for kernel in plan.kernels:
        candidates = variant_candidates(kernel)
        if not candidates:
            continue
        kind = kernel.kind
        if kind == "conv":
            c_in, h, w = kernel.in_shape
            shape = (batch, h, w, c_in)
        elif kind == "linear":
            shape = (batch, kernel.weight_t.shape[0])
        else:  # pool: reconstruct the input geometry from the output shape
            c, h_out, w_out = kernel.out_shape
            k, s = kernel.kernel_size, kernel.stride
            shape = (batch, (h_out - 1) * s + k, (w_out - 1) * s + k, c)
        x = np.abs(rng.normal(size=shape)).astype(plan.dtype)
        # Interleave the timing rounds across variants (A B C, A B C, ...)
        # instead of exhausting each variant's repeats back to back: CPU
        # frequency drift then biases every candidate equally, so near-ties
        # between variants resolve by actual speed rather than by which one
        # happened to run during the faster clock window.
        times = {}
        for variant in candidates:
            kernel.variant = variant
            kernel.run(x, task_plan, pool, None, None)  # warm-up: allocate buffers
            times[variant] = float("inf")
        for _ in range(repeats):
            for variant in candidates:
                kernel.variant = variant
                start = time.perf_counter()
                kernel.run(x, task_plan, pool, None, None)
                times[variant] = min(times[variant], time.perf_counter() - start)
        best_variant = min(times, key=times.get)
        kernel.variant = best_variant
        choices[kernel.name] = best_variant
    plan.kernel_choices = dict(choices)
    return choices
