"""Kernel variants for the fused GEMM engine, plus the per-layer chooser.

The compiled plan's default execution path (``ConvGemmMaskKernel.run``'s
im2col → one monolithic GEMM → ``apply_threshold_mask``) is simple and
bit-stable, but it is not always the fastest way to run a layer on a given
machine.  This module adds alternative lowerings of the *same* layer
semantics, selectable per kernel instance via its ``variant`` attribute:

Convolutions (``ConvGemmMaskKernel``)
  * ``"im2col"`` (default) — the original path, untouched, so existing plans
    behave exactly as before and the dynamic row-gather fast path keeps its
    bit-exactness story.
  * ``"blocked"`` — cache-blocked fused GEMM: images are processed in blocks
    whose im2col panel fits in cache (:data:`_COLS_BLOCK_BYTES`), the panel
    is built with one long-run strided copy per kernel row
    (:func:`copy_window_strips` — ``k`` copies of ``k*C_in``-wide runs
    instead of ``k*k`` copies of ``C_in``-wide runs), and the bias +
    threshold-mask epilogue is applied to each output tile while it is still
    cache-hot.  The panel is **bit-identical** to the monolithic im2col
    matrix and each block's GEMM sees the same per-row reduction order, so
    this variant reproduces the default path bit for bit.
  * ``"packed"`` — the blocked GEMM with panel-resident weights: the weight
    matrix's columns are repacked once at plan build into L2-sized
    contiguous panels (:func:`packed_weight_panels`), so the B-matrix stays
    cache-resident across image blocks instead of being re-streamed from
    DRAM per block.  Panel boundaries fall on BLAS micro-kernel lane
    multiples, and a candidate multi-panel split is kept only after a
    build-time proof that it reproduces the full-width GEMM's bits on this
    host (:func:`_packed_split_exact`; otherwise the packing collapses to
    one contiguous panel), so ``packed`` is unconditionally
    **bit-identical** to ``blocked`` (and therefore to ``im2col``).
    Composes with dead-channel compaction — panels are packed from the
    kernel's current (possibly compacted) weights.
  * ``"direct"`` — im2col-free shift-and-add convolution: one full-plane
    GEMM per filter tap, accumulated into the output through shifted
    ``as_strided``-style window views.  No ``cols`` workspace exists at all.
    1x1/stride-1 layers degenerate to a single GEMM over the input itself
    (bit-identical to im2col, whose column matrix *is* the input); for k>1
    the per-pixel reduction is regrouped from ``(ky, kx, c)`` order into
    per-tap partial sums, so the contract is ULP-level (``allclose``), not
    bitwise.  Eligible for stride-1 layers (the dominant VGG shapes).
  * ``"winograd"`` — F(2x2, 3x3) Winograd transform for stride-1 3x3 convs:
    weights are pre-transformed once at plan build (:func:`winograd_weights`,
    cached on the kernel), the input transform is tiled per cache block with
    pure add/subtract combinations (``B``'s entries are 0/±1 — the only
    multiplies are the 16 per-face tile GEMMs), and the inverse transform is
    fused with the bias+threshold-mask epilogue per block.  Executes
    ``16/36`` of the direct multiply count per output tile (2.25x fewer
    MACs, reported as such by the traffic hook).  The transforms regroup
    reductions beyond per-tap splitting, so the contract is a **declared
    tolerance** (:func:`winograd_tolerance`) rather than ULP.  Falls back to
    the other variants for stride>1 / non-3x3 shapes (not eligible).
  * ``"int8"`` — opt-in symmetric-quantized inference (see
    :class:`QuantizedGemm`): activations are quantized on the fly with a
    per-kernel scale calibrated from :class:`~repro.engine.calibrate.
    CalibrationProfile` activation ranges, weights carry per-output-channel
    scales, the integer GEMM accumulates exactly (values are stored in a
    float container wide enough that every int32-range accumulation is
    representable — the float unit *is* the exact integer datapath), and
    the epilogue dequantizes, adds the float bias and applies the threshold
    mask.  Accuracy contract: declared tolerance measured by the
    differential suite, not bit-exactness.
  * ``"int8spd"`` — the genuine int8 *speed* datapath: the quantized weights
    are additionally packed as contiguous ``int16`` rows
    (``QuantizedGemm.weight_qi``), activations quantize into an ``int16``
    panel, and the inner product runs as a wide-integer ``np.einsum`` into
    an ``int32`` accumulator with panel-bounded reduction depth
    (:func:`_int8_accumulate`).  The integer accumulation is exact, the
    dequant/guard-band-refinement/mask epilogue is shared with ``int8``, so
    ``int8spd`` output is **bit-identical to ``int8``** — same declared
    accuracy contract, different execution engine.  The chooser only offers
    it when the host's integer matmul actually beats float32 BLAS
    (:func:`int8_datapath_beats_float`, measured once per process).

Fully-connected layers (``LinearMaskKernel``)
  ``"dense"`` (default, original path), ``"blocked"`` (row-blocked GEMM with
  the bias+mask epilogue fused per block — bit-identical), ``"packed"``
  (blocked + panel-resident weights — bit-identical), ``"int8"``,
  ``"int8spd"``.

Max pooling (``MaxPoolKernel``)
  ``"reshape"`` (default, original path: reshape-reduce for aligned
  non-overlapping windows) and ``"views"`` (strided-window ``np.maximum``
  cascade — bit-identical, and measurably faster on this machine's
  single-core OpenBLAS build because it avoids the 6-D reduction).

:func:`autotune_kernel_variants` times every eligible variant of every
kernel on synthetic inputs of the kernel's true geometry (through the real
``kernel.run`` entry point, epilogue included) and caches the winning
choices on ``plan.kernel_choices``; :func:`apply_kernel_choices` replays a
cached choice map onto any plan whose kernels share names — which is how
choices survive :class:`~repro.engine.planspec.PlanSpec` round-trips into
spawned workers.  Measurements themselves are deduplicated through a
process-level :class:`KernelTimingCache` keyed by (layer geometry, variant):
N per-task specialized plans with identical shapes time each candidate once,
and chooser-aware re-specialization (``specialize_plan(choose_kernels=True)``,
the online :class:`~repro.serving.recalibrate.RecalibrationLoop`) re-runs the
chooser on the freshly compacted geometry as pure cache replay when the
shapes did not change — zero re-timing per deploy.

This module deliberately imports nothing from :mod:`repro.engine.plan`
(``plan.py`` imports *us*); every entry point takes the kernel object and
duck-types against the attributes all plan kernels carry (``uid``, ``kind``,
``variant``, geometry, ``mask``, ``dense_macs_per_image``...).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
from numpy.lib.stride_tricks import as_strided

__all__ = [
    "CONV_VARIANTS",
    "LINEAR_VARIANTS",
    "POOL_VARIANTS",
    "QuantizedGemm",
    "quantize_gemm",
    "quantize_plan_kernels",
    "variant_candidates",
    "set_kernel_variant",
    "force_kernel_variant",
    "apply_kernel_choices",
    "autotune_kernel_variants",
    "apply_threshold_mask",
    "report_mask_stats",
    "record_variant_traffic",
    "winograd_tolerance",
    "winograd_weights",
    "packed_weight_panels",
    "int8_datapath_beats_float",
    "KernelTimingCache",
    "TIMING_CACHE",
    "kernel_timing_key",
]

#: Target byte size of one cache-blocked im2col panel.  512 KB keeps the
#: panel + the weight panel + the output tile inside a typical shared L2/L3
#: slice while staying large enough that BLAS still runs full-width panels.
_COLS_BLOCK_BYTES = 1 << 19

#: Byte budget of one packed weight panel (columns of ``weight_t``).  256 KB
#: leaves room in L2 for the im2col block panel streaming past it.
_PACKED_PANEL_BYTES = 1 << 18

#: Per-block scratch budget of the Winograd path (4 MB, L3-resident).  The
#: face GEMMs touch one face at a time so they never need the whole block in
#: L2, while the add/subtract transform passes are dispatch-bound: measured
#: across the vgg_small conv shapes, blocks sized to this budget run the
#: whole pipeline 1.4-2x faster than L2-sized blocks.
_WINO_BLOCK_BYTES = 1 << 22

#: Packed panel boundaries fall on multiples of this many columns.  BLAS
#: micro-kernels partition the output into fixed-width column micro-tiles and
#: reduce each column independently of its neighbours, so micro-tile-aligned
#: cuts are the *candidate* boundaries at which a panel GEMM can reproduce
#: the full-width GEMM's per-column reduction order.  16 covers the NR
#: widths of OpenBLAS/BLIS/MKL x86 double/single micro-kernels (4/8/16); the
#: same granularity dead-channel compaction pads to, for the same reason.
#: Alignment alone is necessary but not sufficient — some BLAS builds switch
#: whole code paths (small-matrix kernels, threading splits) on the call
#: geometry — so :func:`packed_weight_panels` additionally *proves* each
#: split bit-exact on this host at build time and collapses to the single
#: contiguous panel when the proof fails.  The bit-exactness contract is
#: therefore unconditional; the multi-panel win is opportunistic.
_PACKED_PANEL_LANES = 16

#: GEMM row counts the packed-split proof probes (see
#: :func:`_packed_split_exact`): a geometric spread over the row regimes the
#: blocked runners produce, from a single-image remainder block to a full
#: cache block.
_PACKED_PROBE_ROWS = (1, 8, 64, 256)

CONV_VARIANTS = ("im2col", "blocked", "packed", "direct", "winograd", "int8", "int8spd")
LINEAR_VARIANTS = ("dense", "blocked", "packed", "int8", "int8spd")
POOL_VARIANTS = ("reshape", "views")

#: int8 symmetric quantization range (zero-point-free).
_QMAX = 127.0

#: Guard band of the int8 decision-refinement epilogue, in standard
#: deviations of the per-slot quantization noise.  Output slots whose
#: dequantized value lands within ``guard * sigma`` of the task threshold
#: are recomputed from the retained float weights, so near-threshold mask
#: decisions are exact and quantization error cannot compound through the
#: layer stack (see ``_refine_conv_int8``).
_INT8_GUARD = 8.0

#: Reduction-panel depth of the int8 speed path's integer accumulation.
#: Each panel's int32 partial sums are bounded by ``4096 * 127**2 ~= 2**26``,
#: far inside int32 range; deeper reductions accumulate panel by panel, so
#: the wide-integer einsum is exact at any depth.
_INT8SPD_PANEL_ROWS = 4096

#: Cached verdict of the once-per-process int8 datapath probe
#: (:func:`int8_datapath_beats_float`); ``None`` = not measured yet.  Tests
#: monkeypatch this to force chooser eligibility deterministically.
_INT8SPD_WINS: Optional[bool] = None


# ---------------------------------------------------------------------------
# Row-stable GEMM: one reduction order for every batch size.
# ---------------------------------------------------------------------------
#: Minimum row count at which BLAS runs its standard sgemm path.  Below this,
#: implementations switch to gemv (M=1) or skinny-M kernels (observed up to
#: M=7 for large-K FC shapes on OpenBLAS) whose reduction order differs from
#: the full kernel's, so the same row reduces to ULP-different values in a
#: small batch than in a large one.  8 is the widest switch point observed
#: (it matches the row micro-tile height of x86 single/double kernels); conv
#: GEMMs never dip under it because their M is ``n * spatial``.
_SGEMM_MIN_ROWS = 8


def matmul_rowsafe(a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """``a @ b`` whose per-row results match the same rows in any batch size.

    BLAS dispatches small-M products (a single request's FC layer, a task
    owning one row of a mixed micro-batch) to gemv/skinny kernels that
    reduce in a different order than the standard sgemm path, producing
    ULP-different outputs for the identical row depending on how many other
    rows share the call.  That would break the serving contract that a
    coalesced mixed-task batch is bit-identical to per-task execution of the
    same rows.  Padding small batches to :data:`_SGEMM_MIN_ROWS` (the extra
    rows are zeros and discarded) keeps every call on the one sgemm path,
    whose per-row reductions are independent of M.  Integer (int8) GEMMs
    accumulate exactly at any M and never need this detour.
    """
    m = a.shape[0]
    if m >= _SGEMM_MIN_ROWS:
        return np.matmul(a, b, out=out)
    padded = np.zeros((_SGEMM_MIN_ROWS,) + a.shape[1:], dtype=a.dtype)
    padded[:m] = a
    result = np.matmul(padded, b)
    if out is None:
        return result[:m]
    out[:] = result[:m]
    return out


# ---------------------------------------------------------------------------
# Shared epilogue: threshold mask + sparsity reporting.
# ---------------------------------------------------------------------------
def report_mask_stats(
    kernel, task, recorder, ctx, images: int, slots_per_image: int,
    channel_live: Optional[np.ndarray], live: float, mask_size: int,
) -> None:
    """Sparsity-reporting tail shared by every masked-GEMM variant.

    ``live`` is the total number of surviving (image, position, channel)
    slots; ``channel_live`` the per-channel breakdown when the caller
    computed one (required whenever the recorder exposes the
    ``record_channels`` calibration hook).  The recorded sparsity is
    normalised by the layer's **dense** channel count (``kernel.
    dense_channels``) so dense and specialized runs of the same traffic stay
    comparable, while the ``ctx`` gate signal uses the stream's own
    geometry (``mask_size``) — it describes the data the next kernel sees.
    """
    record_channels = getattr(recorder, "record_channels", None) if recorder is not None else None
    if record_channels is not None and channel_live is not None:
        record_channels(task.name, kernel.mask.layer_name, channel_live, images * slots_per_image)
    if recorder is not None:
        dense_slots = images * slots_per_image * kernel.dense_channels
        recorder.record(task.name, kernel.mask.layer_name, 1.0 - live / dense_slots, images)
    if ctx is not None:
        ctx.prev_sparsity = 1.0 - live / mask_size


def apply_threshold_mask(
    kernel, gemm: np.ndarray, task, ws, recorder, ctx, slots_per_image: int
) -> None:
    """Monolithic threshold-mask step of the fused GEMM kernels.

    ``gemm`` is the (batch, ..., channels) pre-activation view; the mask
    buffer comes from the workspace pool and is rewritten in place with
    ``np.greater_equal(..., out=...)``, so steady-state serving allocates
    nothing here.  Survival statistics flow through
    :func:`report_mask_stats`; the blocked variants skip this function and
    mask per cache-hot tile instead, feeding the same reporting tail with
    their accumulated counts.
    """
    n = gemm.shape[0]
    mask = ws.get(kernel.uid, "mask", n, gemm.shape, np.bool_)
    np.greater_equal(gemm, task.thresholds[kernel.mask.slot], out=mask)
    gemm *= mask
    survival_needed = recorder is not None or (ctx is not None and ctx.dynamic is not None)
    if survival_needed:
        if recorder is not None and getattr(recorder, "record_channels", None) is not None:
            # Per-channel live-slot counts (channels are the last axis); the
            # scalar total falls out of them for free.
            channel_live = mask.sum(axis=tuple(range(mask.ndim - 1)), dtype=np.int64)
            live = float(channel_live.sum())
        else:
            channel_live = None
            live = float(np.count_nonzero(mask))
        report_mask_stats(
            kernel, task, recorder, ctx, n, slots_per_image, channel_live, live, mask.size
        )
    elif ctx is not None:
        ctx.prev_sparsity = 0.0


# ---------------------------------------------------------------------------
# Per-variant MAC/byte accounting (physical traffic, not semantic MACs).
# ---------------------------------------------------------------------------
def record_variant_traffic(recorder, variant: str, macs: int, nbytes: int) -> None:
    """Feed a recorder's optional ``record_variant`` hook (physical totals).

    The :class:`~repro.engine.plan.RunContext` MAC counters stay *semantic*
    (rows x reduction x width of the layer's math) so MAC-reduction ratios
    remain comparable across variants; this hook carries what the variant
    physically executed — e.g. the direct path's per-tap full-plane GEMMs
    run ~``(H+2p)(W+2p)/(HW)`` more MACs than the im2col lowering of the
    same layer — plus a simple bytes-touched model of its memory traffic.
    """
    if recorder is None:
        return
    hook = getattr(recorder, "record_variant", None)
    if hook is not None:
        hook(variant, int(macs), int(nbytes))


def conv_variant_traffic(kernel, n: int, variant: str) -> tuple:
    """(physical MACs, modelled bytes touched) of one conv batch."""
    item = kernel.weight_t.dtype.itemsize
    c_in, h, w = kernel.in_shape
    c_out, h_out, w_out = kernel.out_shape
    k, s, p = kernel.kernel_size, kernel.stride, kernel.padding
    rows = n * h_out * w_out
    reduction = kernel.weight_t.shape[0]
    plane = n * (h + 2 * p) * (w + 2 * p)
    input_bytes = item * n * h * w * c_in + (item * plane * c_in if p > 0 else 0)
    weight_bytes = item * reduction * c_out
    out_bytes = item * rows * c_out
    mask_bytes = (2 * rows * c_out + item * rows * c_out) if kernel.mask is not None else 0
    if variant == "direct":
        if k == 1 and p == 0 and s == 1:
            macs = rows * reduction * c_out
            nbytes = input_bytes + weight_bytes + out_bytes + mask_bytes
        else:
            taps = k * k
            macs = taps * plane * c_in * c_out
            # per tap: read the plane, write the tap output, accumulate out
            nbytes = input_bytes + weight_bytes + mask_bytes + taps * item * (
                plane * c_in + plane * c_out + 2 * rows * c_out
            )
        return macs, nbytes
    if variant == "winograd":
        th, tw = (h_out + 1) // 2, (w_out + 1) // 2
        tiles = n * th * tw
        # 16 tile GEMMs over (tiles, c_in) x (c_in, c_out): 16 multiplies
        # per 2x2 output tile where direct convolution spends 36 — the
        # genuinely reduced multiply count is the whole point.
        macs = 16 * tiles * c_in * c_out
        hp, wp = 2 * th + 2, 2 * tw + 2
        nbytes = (
            input_bytes
            + item * n * hp * wp * c_in  # zero-bordered tile plane
            + 2 * item * 16 * tiles * (c_in + c_out)  # V and M faces, written + read
            + item * 16 * c_in * c_out  # pre-transformed weights
            + out_bytes
            + mask_bytes
        )
        return macs, nbytes
    macs = rows * reduction * c_out
    # im2col/blocked/packed/int8: cols written once and re-read by the GEMM.
    cols_bytes = 2 * item * rows * reduction
    nbytes = input_bytes + cols_bytes + weight_bytes + out_bytes + mask_bytes
    if variant in ("int8", "int8spd"):
        nbytes += item * plane * c_in  # the extra quantize pass
    if variant == "int8spd":
        # int16 column panel + int32 accumulator replace the float cols/acc.
        nbytes += (2 - item) * 2 * rows * reduction + (4 - item) * rows * c_out
    return macs, nbytes


def linear_variant_traffic(kernel, n: int, variant: str) -> tuple:
    """(physical MACs, modelled bytes touched) of one FC batch."""
    item = kernel.weight_t.dtype.itemsize
    reduction, width = kernel.weight_t.shape
    macs = n * reduction * width
    nbytes = item * (n * reduction + reduction * width + n * width)
    if kernel.mask is not None:
        nbytes += 2 * n * width + item * n * width
    if variant in ("int8", "int8spd"):
        nbytes += item * n * reduction
    if variant == "int8spd":
        nbytes += (2 - item) * n * reduction + (4 - item) * n * width
    return macs, nbytes


def pool_variant_traffic(kernel, x: np.ndarray, out: np.ndarray) -> tuple:
    return 0, x.nbytes + out.nbytes


# ---------------------------------------------------------------------------
# im2col panel construction via overlapping window strips.
# ---------------------------------------------------------------------------
def copy_window_strips(
    cols: np.ndarray, src: np.ndarray, n: int,
    h_out: int, w_out: int, k: int, s: int, c_in: int,
) -> None:
    """Fill an im2col panel with ``k`` long-run strided copies.

    Adjacent output positions' windows overlap in memory: for a fixed kernel
    row ``ky``, the ``(kx, c)`` face of the window at output column ``j`` is
    the *contiguous* run of ``k*c_in`` values starting at input pixel
    ``(ky + i*s, j*s)``.  One ``as_strided`` view per ``ky`` therefore
    exposes all of that row's window faces at once, and copying it lands
    ``k*c_in``-wide runs instead of the naive double loop's ``c_in``-wide
    runs — same panel, bit for bit, at a fraction of the copy overhead.

    ``src`` must be C-contiguous NHWC (the padded workspace buffer always
    is); the last window's run ends at input column ``(w_out-1)*s + k <= W``
    by conv geometry, so the view never reads out of bounds.
    """
    sn, sh, sw, sc = src.strides
    shape = (n, h_out, w_out, k * c_in)
    panel = cols.reshape(n, h_out, w_out, k, k * c_in)
    for ky in range(k):
        strip = as_strided(src[:, ky:], shape=shape, strides=(sn, s * sh, s * sw, sc))
        panel[:, :, :, ky, :] = strip


def _padded_input(kernel, x: np.ndarray, ws) -> np.ndarray:
    """The conv source plane: the zero-bordered pad buffer, or ``x`` itself.

    Both the p>0 pad plane and the p==0 contiguity fallback live in the
    :class:`~repro.engine.plan.WorkspacePool` — steady-state serving
    allocates nothing here, whatever layout the upstream kernel produced.
    """
    p = kernel.padding
    n = x.shape[0]
    c_in, h, w = kernel.in_shape
    if p == 0:
        if x.flags["C_CONTIGUOUS"]:
            return x
        contig = ws.get(kernel.uid, "pad", n, (n, h, w, c_in), kernel.weight_t.dtype)
        np.copyto(contig, x)
        return contig
    padded = ws.get(
        kernel.uid, "pad", n, (n, h + 2 * p, w + 2 * p, c_in), kernel.weight_t.dtype
    )
    # The border stays zero from allocation time; only the interior is
    # rewritten (same invariant as the default im2col path).
    padded[:, p : p + h, p : p + w, :] = x
    return padded


# ---------------------------------------------------------------------------
# Convolution variants.
# ---------------------------------------------------------------------------
def run_conv_blocked(kernel, x, task, ws, recorder, ctx, panels=None, variant="blocked"):
    """Cache-blocked im2col GEMM with the bias+mask epilogue fused per block.

    Bit-identical to the default path: the strip-copied panel equals the
    monolithic im2col matrix and blocking over *images* never splits a GEMM
    row, so every output element sees the same reduction order.

    With ``panels`` (the ``"packed"`` variant), each block's GEMM runs
    against the L2-resident weight panels from :func:`packed_weight_panels`
    instead of streaming the full-width weight matrix — still bit-identical,
    because the packer only keeps splits proven exact on this host.
    """
    n = x.shape[0]
    c_in, _, _ = kernel.in_shape
    c_out, h_out, w_out = kernel.out_shape
    k, s = kernel.kernel_size, kernel.stride
    dtype = kernel.weight_t.dtype
    src = _padded_input(kernel, x, ws)
    spi = h_out * w_out
    reduction = kernel.weight_t.shape[0]
    # Round (not floor) to the nearest image count whose panel hits the byte
    # target: a 1.1-panel-sized budget should still pair images up — the
    # measured sweet spot sits at the target, not strictly under it.
    panel_bytes = max(1, spi * reduction * dtype.itemsize)
    block = max(1, min(n, (_COLS_BLOCK_BYTES + panel_bytes // 2) // panel_bytes))

    out = ws.get(kernel.uid, "out", n, (n * spi, c_out), dtype)
    cols = ws.get(kernel.uid, "bcols", block, (block * spi, reduction), dtype)
    survival_needed = recorder is not None or (ctx is not None and ctx.dynamic is not None)
    need_channels = (
        recorder is not None and getattr(recorder, "record_channels", None) is not None
    )
    thresholds = mask = channel_live = None
    live_total = 0
    if kernel.mask is not None:
        thresholds = task.thresholds[kernel.mask.slot]
        mask = ws.get(kernel.uid, "mask", n, (n, spi, c_out), np.bool_)
        if need_channels:
            channel_live = np.zeros(c_out, dtype=np.int64)

    for b0 in range(0, n, block):
        nb = min(n, b0 + block) - b0
        panel = cols[: nb * spi]
        copy_window_strips(panel, src[b0 : b0 + nb], nb, h_out, w_out, k, s, c_in)
        tile = out[b0 * spi : (b0 + nb) * spi]
        if panels is None:
            np.matmul(panel, kernel.weight_t, out=tile)
        else:
            for j0, j1, wpanel in panels:
                np.matmul(panel, wpanel, out=tile[:, j0:j1])
        np.add(tile, kernel.bias, out=tile)
        if kernel.mask is not None:
            gemm = tile.reshape(nb, spi, c_out)
            tile_mask = mask[b0 : b0 + nb]
            # Per-row thresholds (mixed-task batches) carry a leading batch
            # axis and must be sliced alongside the image block; the
            # single-task layouts ((1, spi, c), or broadcastable (spi, c))
            # broadcast over every block unsliced.
            per_row = thresholds.ndim == 3 and thresholds.shape[0] != 1
            tile_thr = thresholds[b0 : b0 + nb] if per_row else thresholds
            np.greater_equal(gemm, tile_thr, out=tile_mask)
            gemm *= tile_mask
            if channel_live is not None:
                channel_live += tile_mask.sum(axis=(0, 1), dtype=np.int64)
            elif survival_needed:
                live_total += np.count_nonzero(tile_mask)

    if ctx is not None:
        ctx.effective_macs += n * spi * reduction * c_out
        ctx.dense_macs += n * kernel.dense_macs_per_image
    record_variant_traffic(recorder, variant, *conv_variant_traffic(kernel, n, variant))
    if kernel.mask is not None:
        if survival_needed:
            live = float(channel_live.sum()) if channel_live is not None else float(live_total)
            report_mask_stats(
                kernel, task, recorder, ctx, n, spi,
                channel_live, live, n * spi * c_out,
            )
        elif ctx is not None:
            ctx.prev_sparsity = 0.0
    elif ctx is not None:
        ctx.prev_sparsity = 0.0
    return out.reshape(n, h_out, w_out, c_out)


# ---------------------------------------------------------------------------
# Packed weight panels (the "packed" variant's plan-build-time state).
# ---------------------------------------------------------------------------
def _packed_split_exact(weight_t: np.ndarray, panels: list) -> bool:
    """Build-time proof that a panel split preserves this BLAS's exact bits.

    Reduction order per output element is an implementation detail of the
    host BLAS and can change with the *call geometry* (small-matrix kernels,
    threading splits), so lane-aligned cuts alone do not guarantee that a
    panel GEMM reproduces the full-width GEMM bit for bit.  This probe runs
    both lowerings on seeded inputs across the row regimes the blocked
    runners produce (:data:`_PACKED_PROBE_ROWS`) and demands bitwise
    equality: order differences between two float reductions of random data
    surface as bit differences essentially immediately.
    """
    rng = np.random.default_rng(0x5EED)
    reduction, width = weight_t.shape
    for rows in _PACKED_PROBE_ROWS:
        probe = rng.normal(size=(rows, reduction)).astype(weight_t.dtype, copy=False)
        full = probe @ weight_t
        split = np.empty_like(full)
        for j0, j1, panel in panels:
            np.matmul(probe, panel, out=split[:, j0:j1])
        if not np.array_equal(split, full):
            return False
    return True


def packed_weight_panels(kernel) -> list:
    """L2-sized contiguous column panels of ``kernel.weight_t``, cached.

    Returns ``[(j0, j1, panel), ...]`` where ``panel`` is the C-contiguous
    copy of ``weight_t[:, j0:j1]``.  Panels are cut at
    :data:`_PACKED_PANEL_LANES` column multiples and sized to
    :data:`_PACKED_PANEL_BYTES` so a panel stays L2-resident while every
    image block's im2col panel streams past it; a candidate multi-panel
    split is kept only after :func:`_packed_split_exact` proves it
    bit-identical to the full-width GEMM on this host, otherwise the packing
    collapses to one contiguous full-width panel (still a win when
    compaction left ``weight_t`` strided, and trivially exact).  Built once
    per kernel from the *current* (possibly dead-channel-compacted) weights
    and cached on the kernel object; derived state, so PlanSpec round-trips
    simply rebuild it lazily on first run.  A single-panel kernel reuses
    ``weight_t`` itself when already contiguous.
    """
    cached = getattr(kernel, "packed", None)
    if cached is not None:
        return cached
    weight_t = kernel.weight_t
    reduction, width = weight_t.shape
    col_bytes = max(1, reduction * weight_t.dtype.itemsize)
    lanes = max(
        _PACKED_PANEL_LANES,
        (_PACKED_PANEL_BYTES // col_bytes) // _PACKED_PANEL_LANES * _PACKED_PANEL_LANES,
    )
    panels = [
        (j0, min(width, j0 + lanes), np.ascontiguousarray(weight_t[:, j0 : j0 + lanes]))
        for j0 in range(0, width, lanes)
    ]
    if len(panels) > 1 and not _packed_split_exact(weight_t, panels):
        panels = [(0, width, np.ascontiguousarray(weight_t))]
    kernel.packed = panels
    return panels


# ---------------------------------------------------------------------------
# Winograd F(2x2, 3x3).
# ---------------------------------------------------------------------------
#: Weight-side Winograd transform ``G`` for F(2x2, 3x3) (``U = G g G^T``).
#: Its entries are exact dyadic rationals, and the matching input/inverse
#: transforms ``B^T``/``A^T`` contain only 0/±1 — applied below as explicit
#: add/subtract combinations, so the only multiplies in the whole variant
#: are the 16 per-face tile GEMMs.
_WINO_G = np.array(
    [[1.0, 0.0, 0.0], [0.5, 0.5, 0.5], [0.5, -0.5, 0.5], [0.0, 0.0, 1.0]]
)


def winograd_tolerance(dtype) -> Dict[str, float]:
    """Declared numeric tolerance of the ``winograd`` variant, per dtype.

    The Winograd transforms regroup each output's 9-tap reduction into
    transformed-domain combinations, so outputs differ from the im2col
    reduction by accumulated rounding — a few ULP of the arithmetic dtype
    in practice.  These bounds are the *contract* the differential suite
    enforces (``np.allclose(..., **winograd_tolerance(dtype))``), declared
    with safety margin above the observed error rather than at it.
    """
    if np.dtype(dtype) == np.float64:
        return {"rtol": 1e-8, "atol": 1e-10}
    return {"rtol": 1e-3, "atol": 1e-5}


def winograd_eligible(kernel) -> bool:
    """F(2x2, 3x3) covers exactly the stride-1 3x3 conv shapes."""
    return (
        getattr(kernel, "kind", None) == "conv"
        and kernel.kernel_size == 3
        and kernel.stride == 1
    )


def winograd_weights(kernel) -> np.ndarray:
    """The kernel's pre-transformed ``(16, C_in, C_out)`` Winograd weights.

    ``U = G g G^T`` per (input, output) channel pair, computed once in
    float64 then cast to the plan dtype and cached on the kernel — plan-
    build-time state like the int8 payload, but derived: PlanSpec round-trips
    rebuild it lazily on first run instead of serializing it.
    """
    cached = getattr(kernel, "wino", None)
    if cached is not None:
        return cached
    reduction, c_out = kernel.weight_t.shape
    c_in = reduction // 9
    g = kernel.weight_t.reshape(3, 3, c_in, c_out).astype(np.float64)
    u = np.einsum("ij,jkcf,lk->ilcf", _WINO_G, g, _WINO_G)
    kernel.wino = np.ascontiguousarray(
        u.reshape(16, c_in, c_out).astype(kernel.weight_t.dtype)
    )
    return kernel.wino


def run_conv_winograd(kernel, x, task, ws, recorder, ctx):
    """F(2x2, 3x3) Winograd conv with the fused bias+mask epilogue per block.

    Pipeline per cache block of images: input-transform (``V = B^T d B``) as
    four whole-plane row passes followed by four strided column passes per
    row plane — overlapping 4x4 tiles are never gathered, every pass keeps a
    long contiguous inner axis — run the 16 tile GEMMs as one batched matmul
    against the cached pre-transformed weights (:func:`winograd_weights`),
    inverse-transform (``Y = A^T M A``, adds again), scatter the 2x2 output
    tiles, then apply the same bias + threshold-mask + survival-count
    epilogue as the blocked path while the block is cache-hot.

    The zero border of the tile plane serves double duty: conv padding and
    the remainder column/row of odd output dims (partial tiles compute into
    the border and are cropped at scatter time).  Numeric contract:
    :func:`winograd_tolerance`.
    """
    n = x.shape[0]
    c_in, h, w = kernel.in_shape
    c_out, h_out, w_out = kernel.out_shape
    p = kernel.padding
    dtype = kernel.weight_t.dtype
    u = winograd_weights(kernel)
    th, tw = (h_out + 1) // 2, (w_out + 1) // 2
    hp, wp = 2 * th + 2, 2 * tw + 2
    spi = h_out * w_out
    tiles = th * tw

    if p == 0 and hp == h and wp == w and x.flags["C_CONTIGUOUS"]:
        src = x
    else:
        src = ws.get(kernel.uid, "wpad", n, (n, hp, wp, c_in), dtype)
        src[:, p : p + h, p : p + w, :] = x

    # Block sizing: unlike the column-panel GEMMs, the 16 face GEMMs stream
    # one (pb, c_in) face at a time, so only a face pair needs to be
    # cache-resident — the full V/M/inverse scratch can spill to L3.  Small
    # blocks are actively harmful here (each transform pass is a cheap
    # elementwise op whose fixed dispatch cost dominates on short rows), so
    # the budget is a multiple of the GEMM panel budget.
    per_image = tiles * (20 * c_in + 25 * c_out) * dtype.itemsize
    budget = _WINO_BLOCK_BYTES
    block = max(1, min(n, (budget + per_image // 2) // max(1, per_image)))

    out = ws.get(kernel.uid, "out", n, (n * spi, c_out), dtype)
    out4 = out.reshape(n, h_out, w_out, c_out)
    # Column-parity split of the padded plane: padded column 2k + p lives at
    # ``spl[:, :, p, k]``, so a tile-column tap ``c`` (plane column 2*tx + c)
    # is the contiguous run ``spl[:, :, c & 1, (c >> 1) + tx]`` — both
    # transform directions then read multi-KB contiguous chunks instead of
    # stride-2 element pairs.
    wt2 = tw + 1
    spl = ws.get(kernel.uid, "wspl", block, (block, hp, 2, wt2, c_in), dtype)
    rbuf = ws.get(kernel.uid, "wrow", block, (block, th, 2, wt2, c_in), dtype)
    vbuf = ws.get(kernel.uid, "wv", block, (16, block * tiles, c_in), dtype)
    mbuf = ws.get(kernel.uid, "wm", block, (16, block * tiles, c_out), dtype)
    sbuf = ws.get(kernel.uid, "wsum", block, (2, 4, block * tiles, c_out), dtype)
    ybuf = ws.get(kernel.uid, "wy", block, (block * tiles, c_out), dtype)

    survival_needed = recorder is not None or (ctx is not None and ctx.dynamic is not None)
    need_channels = (
        recorder is not None and getattr(recorder, "record_channels", None) is not None
    )
    thresholds = mask = channel_live = None
    live_total = 0
    if kernel.mask is not None:
        thresholds = task.thresholds[kernel.mask.slot]
        mask = ws.get(kernel.uid, "mask", n, (n, spi, c_out), np.bool_)
        if need_channels:
            channel_live = np.zeros(c_out, dtype=np.int64)

    # B^T's rows as (op, minuend tap, subtrahend tap): the four combinations
    # below applied along tile rows, then identically along tile columns.
    combos = (
        (np.subtract, 0, 2),
        (np.add, 1, 2),
        (np.subtract, 2, 1),
        (np.subtract, 1, 3),
    )
    for b0 in range(0, n, block):
        nb = min(n, b0 + block) - b0
        pb = nb * tiles
        s = src[b0 : b0 + nb]
        sp = spl[:nb]
        sp[:, :, 0] = s[:, :, 0::2]
        sp[:, :, 1] = s[:, :, 1::2]
        # Forward transform + face GEMMs, one B^T row plane at a time so
        # each plane is consumed while still cache-hot.  Row pass: tile
        # (ty, tx) reads plane rows 2*ty + {0..3}, so each B^T row is one
        # strided whole-plane pass whose inner axis (a full plane row)
        # stays contiguous — no per-tile 4x4 gather is ever materialised.
        # Column pass: the same four combinations along the width; tap
        # ``c`` addresses parity plane ``c & 1`` at offset ``c >> 1``.
        # The plane's four face GEMMs then run as one batched matmul
        # (numerically identical to separate GEMMs, faces are independent).
        for i, (op, a, b) in enumerate(combos):
            ri = rbuf[:nb]
            op(sp[:, a : a + 2 * th : 2], sp[:, b : b + 2 * th : 2], out=ri)
            for j, (cop, ca, cb) in enumerate(combos):
                face = vbuf[4 * i + j, :pb].reshape(nb, th, tw, c_in)
                cop(
                    ri[:, :, ca & 1, (ca >> 1) : (ca >> 1) + tw],
                    ri[:, :, cb & 1, (cb >> 1) : (cb >> 1) + tw],
                    out=face,
                )
            np.matmul(
                vbuf[4 * i : 4 * i + 4, :pb],
                u[4 * i : 4 * i + 4],
                out=mbuf[4 * i : 4 * i + 4, :pb],
            )
        # Inverse row transform A^T: s0 = M0 + M1 + M2, s1 = M1 - M2 - M3
        # (face index t = 4*i + j; i is the tile row).
        for j in range(4):
            s0, s1 = sbuf[0, j, :pb], sbuf[1, j, :pb]
            np.add(mbuf[j, :pb], mbuf[4 + j, :pb], out=s0)
            s0 += mbuf[8 + j, :pb]
            np.subtract(mbuf[4 + j, :pb], mbuf[8 + j, :pb], out=s1)
            s1 -= mbuf[12 + j, :pb]
        # Inverse column transform + scatter; partial edge tiles are cropped.
        yflat = ybuf[:pb]
        y = yflat.reshape(nb, th, tw, c_out)
        for a in range(2):
            rows_a = (h_out - a + 1) // 2
            sa = sbuf[a]
            for b in range(2):
                cols_b = (w_out - b + 1) // 2
                if b == 0:
                    np.add(sa[0, :pb], sa[1, :pb], out=yflat)
                    yflat += sa[2, :pb]
                else:
                    np.subtract(sa[1, :pb], sa[2, :pb], out=yflat)
                    yflat -= sa[3, :pb]
                out4[b0 : b0 + nb, a::2, b::2, :] = y[:, :rows_a, :cols_b]
        tile = out[b0 * spi : (b0 + nb) * spi]
        np.add(tile, kernel.bias, out=tile)
        if kernel.mask is not None:
            gemm = tile.reshape(nb, spi, c_out)
            tile_mask = mask[b0 : b0 + nb]
            # Same per-row threshold slicing as the blocked path (mixed-task
            # batches ship an (n, spi, c) threshold gather).
            per_row = thresholds.ndim == 3 and thresholds.shape[0] != 1
            tile_thr = thresholds[b0 : b0 + nb] if per_row else thresholds
            np.greater_equal(gemm, tile_thr, out=tile_mask)
            gemm *= tile_mask
            if channel_live is not None:
                channel_live += tile_mask.sum(axis=(0, 1), dtype=np.int64)
            elif survival_needed:
                live_total += np.count_nonzero(tile_mask)

    if ctx is not None:
        ctx.effective_macs += n * spi * kernel.weight_t.shape[0] * c_out
        ctx.dense_macs += n * kernel.dense_macs_per_image
    record_variant_traffic(
        recorder, "winograd", *conv_variant_traffic(kernel, n, "winograd")
    )
    if kernel.mask is not None:
        if survival_needed:
            live = float(channel_live.sum()) if channel_live is not None else float(live_total)
            report_mask_stats(
                kernel, task, recorder, ctx, n, spi,
                channel_live, live, n * spi * c_out,
            )
        elif ctx is not None:
            ctx.prev_sparsity = 0.0
    elif ctx is not None:
        ctx.prev_sparsity = 0.0
    return out.reshape(n, h_out, w_out, c_out)


def run_conv_direct(kernel, x, task, ws, recorder, ctx):
    """im2col-free shift-and-add convolution (one GEMM per filter tap).

    Each tap's weights form a contiguous ``(C_in, C_out)`` row slice of
    ``weight_t`` (rows are in ``(ky, kx, c)`` order), so the tap GEMM runs
    over the raw padded plane and its output is accumulated into the result
    through a shifted window view — no column matrix is ever materialised.
    1x1/stride-1 collapses to a single GEMM over the input itself and is
    bit-identical to im2col; k>1 regroups the reduction per tap (ULP-level).
    """
    n = x.shape[0]
    c_in, h, w = kernel.in_shape
    c_out, h_out, w_out = kernel.out_shape
    k, s, p = kernel.kernel_size, kernel.stride, kernel.padding
    dtype = kernel.weight_t.dtype
    spi = h_out * w_out
    reduction = kernel.weight_t.shape[0]
    out = ws.get(kernel.uid, "out", n, (n * spi, c_out), dtype)
    src = _padded_input(kernel, x, ws)
    if k == 1 and p == 0 and s == 1:
        np.matmul(src.reshape(n * h * w, c_in), kernel.weight_t, out=out)
    else:
        h2, w2 = h + 2 * p, w + 2 * p
        plane = n * h2 * w2
        tap_out = ws.get(kernel.uid, "tap", n, (plane, c_out), dtype)
        src2d = src.reshape(plane, c_in)
        out4 = out.reshape(n, h_out, w_out, c_out)
        tap4 = tap_out.reshape(n, h2, w2, c_out)
        for tap in range(k * k):
            ky, kx = divmod(tap, k)
            np.matmul(src2d, kernel.weight_t[tap * c_in : (tap + 1) * c_in], out=tap_out)
            shifted = tap4[:, ky : ky + s * h_out : s, kx : kx + s * w_out : s, :]
            if tap == 0:
                np.copyto(out4, shifted)
            else:
                np.add(out4, shifted, out=out4)
    np.add(out, kernel.bias, out=out)

    if ctx is not None:
        ctx.effective_macs += n * spi * reduction * c_out
        ctx.dense_macs += n * kernel.dense_macs_per_image
    record_variant_traffic(recorder, "direct", *conv_variant_traffic(kernel, n, "direct"))
    if kernel.mask is not None:
        apply_threshold_mask(kernel, out.reshape(n, spi, c_out), task, ws, recorder, ctx, spi)
    elif ctx is not None:
        ctx.prev_sparsity = 0.0
    return out.reshape(n, h_out, w_out, c_out)


def _refine_conv_int8(kernel, q, x, cols, out, task, ws, n):
    """Recompute near-threshold int8 conv outputs from the float weights.

    The threshold mask is a hard decision, so a per-slot error of one
    quantization step can flip a channel dead/live and the flip *compounds*
    through every later masked layer — this, not the value noise itself, is
    what dominates int8 accuracy loss on threshold-masked networks.  The
    fix: estimate the per-slot noise sigma from the quantization model
    (input rounding ~ U(-in_scale/2, in_scale/2) against the weight column,
    weight rounding ~ U(-w_scale/2, w_scale/2) against the quantized input
    row), flag slots within ``_INT8_GUARD`` sigmas of the threshold, and
    recompute exactly those slots with the kernel's retained float weights
    via strided window gathers of the float input.  Flagged slots get exact
    values *and* exact decisions; unflagged slots are provably far enough
    from the threshold that their decision is already correct.  Typical
    flagged fraction is a few percent, so the extra float MACs are noise
    next to the layer GEMM.
    """
    c_in, h, w = kernel.in_shape
    c_out, h_out, w_out = kernel.out_shape
    k, s, p = kernel.kernel_size, kernel.stride, kernel.padding
    spi = h_out * w_out
    weight_t = kernel.weight_t
    thresholds = task.thresholds[kernel.mask.slot]
    # float64 accumulation: exact for the int-valued cols of both the float-
    # container ("int8") and int16 ("int8spd") datapaths — same flagged set.
    row_sumsq = np.einsum("ij,ij->i", cols, cols, dtype=np.float64)
    w_sumsq = np.einsum("ij,ij->j", weight_t, weight_t)
    variance = (q.in_scale ** 2 / 12.0) * (
        (q.w_scale.astype(np.float64) ** 2) * row_sumsq.reshape(n, spi, 1) + w_sumsq
    )
    out3 = out.reshape(n, spi, c_out)
    flagged = (out3 - thresholds) ** 2 <= (_INT8_GUARD ** 2) * variance
    img, pos, chan = np.nonzero(flagged)
    if img.size == 0:
        return
    if p:
        fplane = ws.get(kernel.uid, "fpad", n, (n, h + 2 * p, w + 2 * p, c_in), x.dtype)
        fplane[:, p : p + h, p : p + w, :] = x
    elif x.flags["C_CONTIGUOUS"]:
        fplane = x
    else:
        fplane = ws.get(kernel.uid, "fpad", n, (n, h, w, c_in), x.dtype)
        np.copyto(fplane, x)
    sn, sh, sw, sc = fplane.strides
    windows = as_strided(
        fplane,
        shape=(n, h_out, w_out, k, k, c_in),
        strides=(sn, s * sh, s * sw, sh, sw, sc),
    )
    # Window layout (ky, kx, c) matches weight_t's row order exactly.
    patches = windows[img, pos // w_out, pos % w_out].reshape(-1, k * k * c_in)
    # One per-element dot per flagged slot: einsum reduces each row in a
    # fixed order regardless of how many slots are flagged, so the refined
    # value is invariant to batch composition.  A per-column gathered gemv
    # would reduce in an m-dependent order, and a coalesced mixed-task batch
    # flags a different row set than the same rows run per task.
    out3[img, pos, chan] = (
        np.einsum("ij,ij->i", patches, weight_t.T[chan]) + kernel.bias[chan]
    )


def run_conv_int8(kernel, x, task, ws, recorder, ctx):
    """Symmetric int8 convolution: quantize → exact integer GEMM → dequantize.

    The padded plane is quantized in place (zero borders map to exactly 0,
    so the zero-from-allocation invariant survives quantization), the panel
    is strip-copied like the blocked path, and the epilogue dequantizes with
    the fused ``in_scale * w_scale[c]`` factors, adds the float bias,
    refines near-threshold slots (:func:`_refine_conv_int8`) and masks.
    Accumulation exactness: see :func:`quantize_gemm`.
    """
    q = kernel.quant
    if q is None:
        raise RuntimeError(
            f"kernel '{kernel.name}' has variant 'int8' but carries no quantized "
            "weights; run quantize_plan_kernels first"
        )
    n = x.shape[0]
    c_in, h, w = kernel.in_shape
    c_out, h_out, w_out = kernel.out_shape
    k, s, p = kernel.kernel_size, kernel.stride, kernel.padding
    dtype = kernel.weight_t.dtype
    acc_dtype = q.weight_q.dtype
    h2, w2 = h + 2 * p, w + 2 * p
    qplane = ws.get(kernel.uid, "qpad", n, (n, h2, w2, c_in), acc_dtype)
    interior = qplane[:, p : p + h, p : p + w, :]
    np.divide(x, q.in_scale, out=interior)
    np.rint(interior, out=interior)
    np.clip(interior, -_QMAX, _QMAX, out=interior)

    spi = h_out * w_out
    rows = n * spi
    reduction = q.weight_q.shape[0]
    cols = ws.get(kernel.uid, "qcols", n, (rows, reduction), acc_dtype)
    copy_window_strips(cols, qplane, n, h_out, w_out, k, s, c_in)
    out = ws.get(kernel.uid, "out", n, (rows, c_out), dtype)
    if acc_dtype == dtype:
        np.matmul(cols, q.weight_q, out=out)
        np.multiply(out, q.scale, out=out)
    else:
        wide = ws.get(kernel.uid, "qacc", n, (rows, c_out), acc_dtype)
        np.matmul(cols, q.weight_q, out=wide)
        np.multiply(wide, q.scale, out=wide)
        out[:] = wide
    np.add(out, kernel.bias, out=out)

    if ctx is not None:
        ctx.effective_macs += rows * reduction * c_out
        ctx.dense_macs += n * kernel.dense_macs_per_image
    record_variant_traffic(recorder, "int8", *conv_variant_traffic(kernel, n, "int8"))
    if kernel.mask is not None:
        _refine_conv_int8(kernel, q, x, cols, out, task, ws, n)
        apply_threshold_mask(kernel, out.reshape(n, spi, c_out), task, ws, recorder, ctx, spi)
    elif ctx is not None:
        ctx.prev_sparsity = 0.0
    return out.reshape(n, h_out, w_out, c_out)


# ---------------------------------------------------------------------------
# The genuine int8 speed datapath ("int8spd").
# ---------------------------------------------------------------------------
def int8_datapath_beats_float(
    rows: int = 256, depth: int = 576, width: int = 64, repeats: int = 3
) -> bool:
    """Does this host's wide-integer matmul beat float32 BLAS?  Probed once.

    ``int8spd`` only pays off where the integer einsum outruns the float
    GEMM it replaces (it is a wash or worse on hosts whose BLAS saturates
    memory bandwidth with float32 already).  The chooser consults this probe
    — one representative GEMM shape, best-of-``repeats``, cached in
    :data:`_INT8SPD_WINS` for the life of the process — so ineligible hosts
    never even time the variant.  Plans *shipped* with ``int8spd`` choices
    (via PlanSpec) still run it: eligibility gates choosing, not executing.
    """
    global _INT8SPD_WINS
    if _INT8SPD_WINS is not None:
        return _INT8SPD_WINS
    rng = np.random.default_rng(0)
    qa = rng.integers(-127, 128, size=(rows, depth), dtype=np.int16)
    qb = rng.integers(-127, 128, size=(depth, width), dtype=np.int16)
    acc = np.empty((rows, width), np.int32)
    fa, fb = qa.astype(np.float32), qb.astype(np.float32)
    fc = np.empty((rows, width), np.float32)
    int_best = float_best = float("inf")
    for _ in range(repeats + 1):  # round 0 doubles as warm-up
        start = time.perf_counter()
        np.einsum("ij,jk->ik", qa, qb, out=acc, dtype=np.int32, casting="unsafe")
        int_best = min(int_best, time.perf_counter() - start)
        start = time.perf_counter()
        np.matmul(fa, fb, out=fc)
        float_best = min(float_best, time.perf_counter() - start)
    _INT8SPD_WINS = bool(int_best < float_best)
    return _INT8SPD_WINS


def _int8_weight_qi(q) -> np.ndarray:
    """The quant payload's contiguous int16 weight rows, derived if absent."""
    wqi = getattr(q, "weight_qi", None)
    if wqi is None:
        # Plan rebuilt from a pre-v3 PlanSpec payload: derive the packed
        # integer rows once from the float container (values are ±127 ints).
        wqi = np.ascontiguousarray(q.weight_q.astype(np.int16))
        q.weight_qi = wqi
    return wqi


def _int8_accumulate(qx: np.ndarray, wqi: np.ndarray, acc: np.ndarray) -> None:
    """``acc[int32] = qx[int16] @ wqi[int16]`` — exact, panel-bounded depth."""
    reduction = wqi.shape[0]
    if reduction <= _INT8SPD_PANEL_ROWS:
        np.einsum("ij,jk->ik", qx, wqi, out=acc, dtype=np.int32, casting="unsafe")
        return
    partial = np.empty_like(acc)
    for k0 in range(0, reduction, _INT8SPD_PANEL_ROWS):
        k1 = min(reduction, k0 + _INT8SPD_PANEL_ROWS)
        target = acc if k0 == 0 else partial
        np.einsum(
            "ij,jk->ik", qx[:, k0:k1], wqi[k0:k1], out=target,
            dtype=np.int32, casting="unsafe",
        )
        if k0:
            acc += partial


def _int8_dequantize(kernel, q, acc, out, ws, n, label="qacc"):
    """Shared dequant epilogue: int32 accumulator → scaled float + bias.

    Mirrors the float-container path's operation sequence exactly (same
    wide-dtype staging, same multiply/cast order), which is what makes
    ``int8spd`` bit-identical to ``int8``: both start from the same exact
    integer accumulation and run the same float ops from there.
    """
    dtype = kernel.weight_t.dtype
    acc_dtype = q.weight_q.dtype
    if acc_dtype == dtype:
        out[:] = acc
        np.multiply(out, q.scale, out=out)
    else:
        wide = ws.get(kernel.uid, label, n, out.shape, acc_dtype)
        wide[:] = acc
        np.multiply(wide, q.scale, out=wide)
        out[:] = wide
    np.add(out, kernel.bias, out=out)


def run_conv_int8spd(kernel, x, task, ws, recorder, ctx):
    """int8 conv on the integer datapath (bit-identical to ``"int8"``).

    Same quantize → exact accumulation → dequantize → refine → mask pipeline
    as :func:`run_conv_int8`, but the column panel is narrowed to contiguous
    ``int16`` rows and the inner product runs as a wide-integer einsum into
    an ``int32`` accumulator (:func:`_int8_accumulate`) instead of a float-
    container GEMM.  Both accumulations are exact over the same integers and
    the dequant/refine epilogue is shared, so outputs match bit for bit —
    the variants differ only in which execution units do the work.
    """
    q = kernel.quant
    if q is None:
        raise RuntimeError(
            f"kernel '{kernel.name}' has variant 'int8spd' but carries no quantized "
            "weights; run quantize_plan_kernels first"
        )
    wqi = _int8_weight_qi(q)
    n = x.shape[0]
    c_in, h, w = kernel.in_shape
    c_out, h_out, w_out = kernel.out_shape
    k, s, p = kernel.kernel_size, kernel.stride, kernel.padding
    dtype = kernel.weight_t.dtype
    acc_dtype = q.weight_q.dtype
    h2, w2 = h + 2 * p, w + 2 * p
    # Quantize in a float plane (rint needs a float out), then narrow the
    # whole plane to int16 — the layout the integer inner product streams.
    qplane = ws.get(kernel.uid, "qpad", n, (n, h2, w2, c_in), acc_dtype)
    interior = qplane[:, p : p + h, p : p + w, :]
    np.divide(x, q.in_scale, out=interior)
    np.rint(interior, out=interior)
    np.clip(interior, -_QMAX, _QMAX, out=interior)
    qiplane = ws.get(kernel.uid, "qipad", n, (n, h2, w2, c_in), np.int16)
    np.copyto(qiplane, qplane, casting="unsafe")

    spi = h_out * w_out
    rows = n * spi
    cols = ws.get(kernel.uid, "qicols", n, (rows, wqi.shape[0]), np.int16)
    copy_window_strips(cols, qiplane, n, h_out, w_out, k, s, c_in)
    acc = ws.get(kernel.uid, "qiacc", n, (rows, c_out), np.int32)
    _int8_accumulate(cols, wqi, acc)
    out = ws.get(kernel.uid, "out", n, (rows, c_out), dtype)
    _int8_dequantize(kernel, q, acc, out, ws, n)

    if ctx is not None:
        ctx.effective_macs += rows * wqi.shape[0] * c_out
        ctx.dense_macs += n * kernel.dense_macs_per_image
    record_variant_traffic(
        recorder, "int8spd", *conv_variant_traffic(kernel, n, "int8spd")
    )
    if kernel.mask is not None:
        _refine_conv_int8(kernel, q, x, cols, out, task, ws, n)
        apply_threshold_mask(kernel, out.reshape(n, spi, c_out), task, ws, recorder, ctx, spi)
    elif ctx is not None:
        ctx.prev_sparsity = 0.0
    return out.reshape(n, h_out, w_out, c_out)


def run_conv_variant(kernel, x, task, ws, recorder, ctx):
    variant = kernel.variant
    if variant == "blocked":
        return run_conv_blocked(kernel, x, task, ws, recorder, ctx)
    if variant == "packed":
        return run_conv_blocked(
            kernel, x, task, ws, recorder, ctx,
            panels=packed_weight_panels(kernel), variant="packed",
        )
    if variant == "direct":
        return run_conv_direct(kernel, x, task, ws, recorder, ctx)
    if variant == "winograd":
        return run_conv_winograd(kernel, x, task, ws, recorder, ctx)
    if variant == "int8":
        return run_conv_int8(kernel, x, task, ws, recorder, ctx)
    if variant == "int8spd":
        return run_conv_int8spd(kernel, x, task, ws, recorder, ctx)
    raise ValueError(f"unknown conv variant '{variant}' on kernel '{kernel.name}'")


# ---------------------------------------------------------------------------
# Fully-connected variants.
# ---------------------------------------------------------------------------
def _linear_epilogue(kernel, out, task, ws, recorder, ctx, n):
    if kernel.mask is not None:
        apply_threshold_mask(kernel, out, task, ws, recorder, ctx, 1)
    else:
        if kernel.relu:
            np.maximum(out, 0.0, out=out)
        if ctx is not None:
            ctx.prev_sparsity = 0.0


def run_linear_blocked(kernel, x, task, ws, recorder, ctx, panels=None, variant="blocked"):
    """Row-blocked FC GEMM with the bias+mask epilogue fused per block.

    Sample rows are independent, so blocking them never regroups a
    reduction: bit-identical to the dense path.  With ``panels`` (the
    ``"packed"`` variant) each block multiplies against the L2-resident
    weight panels — see :func:`packed_weight_panels`, still bit-identical
    (the packer only keeps splits proven exact on this host).
    """
    n = x.shape[0]
    reduction, width = kernel.weight_t.shape
    dtype = kernel.weight_t.dtype
    out = ws.get(kernel.uid, "fc", n, (n, width), dtype)
    block = max(1, _COLS_BLOCK_BYTES // max(1, reduction * dtype.itemsize))
    thresholds = task.thresholds[kernel.mask.slot] if kernel.mask is not None else None
    survival_needed = recorder is not None or (ctx is not None and ctx.dynamic is not None)
    mask = channel_live = None
    if kernel.mask is not None:
        mask = ws.get(kernel.uid, "mask", n, (n, width), np.bool_)
        if survival_needed:
            channel_live = np.zeros(width, dtype=np.int64)
    for b0 in range(0, n, block):
        b1 = min(n, b0 + block)
        tile = out[b0:b1]
        if panels is None:
            matmul_rowsafe(x[b0:b1], kernel.weight_t, out=tile)
        else:
            for j0, j1, wpanel in panels:
                matmul_rowsafe(x[b0:b1], wpanel, out=tile[:, j0:j1])
        np.add(tile, kernel.bias, out=tile)
        if kernel.mask is not None:
            tile_mask = mask[b0:b1]
            # Per-row thresholds (mixed-task batches) are (n, width); the
            # single-task layouts ((1, width), or broadcastable (width,))
            # broadcast over every row block unsliced.
            per_row = thresholds.ndim == 2 and thresholds.shape[0] != 1
            tile_thr = thresholds[b0:b1] if per_row else thresholds
            np.greater_equal(tile, tile_thr, out=tile_mask)
            tile *= tile_mask
            if channel_live is not None:
                channel_live += tile_mask.sum(axis=0, dtype=np.int64)
        elif kernel.relu:
            np.maximum(tile, 0.0, out=tile)
    if ctx is not None:
        ctx.effective_macs += n * reduction * width
        ctx.dense_macs += n * kernel.dense_macs_per_image
    record_variant_traffic(recorder, variant, *linear_variant_traffic(kernel, n, variant))
    if kernel.mask is not None:
        if survival_needed:
            report_mask_stats(
                kernel, task, recorder, ctx, n, 1,
                channel_live, float(channel_live.sum()), n * width,
            )
        elif ctx is not None:
            ctx.prev_sparsity = 0.0
    elif ctx is not None:
        ctx.prev_sparsity = 0.0
    return out


def _refine_linear_int8(kernel, q, x, qx, out, task, n):
    """FC counterpart of :func:`_refine_conv_int8` (float input is at hand)."""
    weight_t = kernel.weight_t
    thresholds = task.thresholds[kernel.mask.slot]
    row_sumsq = np.einsum("ij,ij->i", qx, qx, dtype=np.float64)
    w_sumsq = np.einsum("ij,ij->j", weight_t, weight_t)
    variance = (q.in_scale ** 2 / 12.0) * (
        (q.w_scale.astype(np.float64) ** 2) * row_sumsq[:, None] + w_sumsq
    )
    flagged = (out - thresholds) ** 2 <= (_INT8_GUARD ** 2) * variance
    rows, chan = np.nonzero(flagged)
    if rows.size == 0:
        return
    # Per-element dots (see _refine_conv_int8): batch-composition-invariant,
    # unlike a per-column gathered gemv.
    out[rows, chan] = np.einsum("ij,ij->i", x[rows], weight_t.T[chan]) + kernel.bias[chan]


def run_linear_int8(kernel, x, task, ws, recorder, ctx):
    """Symmetric int8 FC layer (same contract as :func:`run_conv_int8`)."""
    q = kernel.quant
    if q is None:
        raise RuntimeError(
            f"kernel '{kernel.name}' has variant 'int8' but carries no quantized "
            "weights; run quantize_plan_kernels first"
        )
    n = x.shape[0]
    reduction, width = q.weight_q.shape
    dtype = kernel.weight_t.dtype
    acc_dtype = q.weight_q.dtype
    qx = ws.get(kernel.uid, "qin", n, (n, reduction), acc_dtype)
    np.divide(x, q.in_scale, out=qx)
    np.rint(qx, out=qx)
    np.clip(qx, -_QMAX, _QMAX, out=qx)
    out = ws.get(kernel.uid, "fc", n, (n, width), dtype)
    if acc_dtype == dtype:
        np.matmul(qx, q.weight_q, out=out)
        np.multiply(out, q.scale, out=out)
    else:
        wide = ws.get(kernel.uid, "qacc", n, (n, width), acc_dtype)
        np.matmul(qx, q.weight_q, out=wide)
        np.multiply(wide, q.scale, out=wide)
        out[:] = wide
    np.add(out, kernel.bias, out=out)
    if ctx is not None:
        ctx.effective_macs += n * reduction * width
        ctx.dense_macs += n * kernel.dense_macs_per_image
    record_variant_traffic(recorder, "int8", *linear_variant_traffic(kernel, n, "int8"))
    if kernel.mask is not None:
        _refine_linear_int8(kernel, q, x, qx, out, task, n)
    _linear_epilogue(kernel, out, task, ws, recorder, ctx, n)
    return out


def run_linear_int8spd(kernel, x, task, ws, recorder, ctx):
    """int8 FC on the integer datapath (bit-identical to ``"int8"``).

    FC counterpart of :func:`run_conv_int8spd`: int16 activation rows, wide-
    integer accumulation, shared dequant/refine epilogue.
    """
    q = kernel.quant
    if q is None:
        raise RuntimeError(
            f"kernel '{kernel.name}' has variant 'int8spd' but carries no quantized "
            "weights; run quantize_plan_kernels first"
        )
    wqi = _int8_weight_qi(q)
    n = x.shape[0]
    reduction, width = wqi.shape
    dtype = kernel.weight_t.dtype
    acc_dtype = q.weight_q.dtype
    qf = ws.get(kernel.uid, "qin", n, (n, reduction), acc_dtype)
    np.divide(x, q.in_scale, out=qf)
    np.rint(qf, out=qf)
    np.clip(qf, -_QMAX, _QMAX, out=qf)
    qx = ws.get(kernel.uid, "qiin", n, (n, reduction), np.int16)
    np.copyto(qx, qf, casting="unsafe")
    acc = ws.get(kernel.uid, "qiacc", n, (n, width), np.int32)
    _int8_accumulate(qx, wqi, acc)
    out = ws.get(kernel.uid, "fc", n, (n, width), dtype)
    _int8_dequantize(kernel, q, acc, out, ws, n)
    if ctx is not None:
        ctx.effective_macs += n * reduction * width
        ctx.dense_macs += n * kernel.dense_macs_per_image
    record_variant_traffic(
        recorder, "int8spd", *linear_variant_traffic(kernel, n, "int8spd")
    )
    if kernel.mask is not None:
        _refine_linear_int8(kernel, q, x, qx, out, task, n)
    _linear_epilogue(kernel, out, task, ws, recorder, ctx, n)
    return out


def run_linear_variant(kernel, x, task, ws, recorder, ctx):
    variant = kernel.variant
    if variant == "blocked":
        return run_linear_blocked(kernel, x, task, ws, recorder, ctx)
    if variant == "packed":
        return run_linear_blocked(
            kernel, x, task, ws, recorder, ctx,
            panels=packed_weight_panels(kernel), variant="packed",
        )
    if variant == "int8":
        return run_linear_int8(kernel, x, task, ws, recorder, ctx)
    if variant == "int8spd":
        return run_linear_int8spd(kernel, x, task, ws, recorder, ctx)
    raise ValueError(f"unknown linear variant '{variant}' on kernel '{kernel.name}'")


# ---------------------------------------------------------------------------
# int8 quantization.
# ---------------------------------------------------------------------------
@dataclass
class QuantizedGemm:
    """Symmetric per-output-channel quantization of one GEMM's weights.

    ``weight_q`` holds the integer weight values ``round(w / w_scale[c])``
    clipped to ±127, stored in a float container (``float32`` plans whose
    reduction satisfies ``K * 127 * 127 < 2**24`` — every float32 partial
    sum of int8 products is then exactly representable; wider reductions
    are stored/accumulated in ``float64``, exact to ``2**53``).  The host
    BLAS therefore computes the *exact* int32 accumulation an integer
    datapath would, which is what makes the declared accuracy contract a
    function of quantization alone, not of the GEMM.

    ``in_scale`` is the per-kernel activation scale calibrated from
    :class:`~repro.engine.calibrate.CalibrationProfile` ranges;
    ``scale = in_scale * w_scale`` is the fused dequantization factor the
    epilogue multiplies by before adding the float bias.
    """

    weight_q: np.ndarray  # (K, C_out), integer-valued
    w_scale: np.ndarray  # (C_out,)
    in_scale: float
    scale: np.ndarray  # (C_out,) = in_scale * w_scale
    #: The same integer weights packed as contiguous int16 rows — the layout
    #: the ``int8spd`` datapath streams.  Optional for backward compatibility
    #: with pre-v3 PlanSpec payloads; derived lazily when absent.
    weight_qi: Optional[np.ndarray] = None


def quantize_gemm(weight_t: np.ndarray, in_absmax: float, margin: float = 1.05) -> QuantizedGemm:
    """Quantize one ``(K, C_out)`` weight matrix for a calibrated input range.

    ``margin`` widens the calibrated activation range slightly so serving
    traffic marginally hotter than the calibration batch still lands inside
    the clip range instead of saturating.
    """
    dtype = weight_t.dtype
    in_scale = max(float(in_absmax) * margin, 1e-12) / _QMAX
    w_absmax = np.abs(weight_t).max(axis=0)
    w_scale = np.maximum(w_absmax, 1e-12) / _QMAX
    reduction = weight_t.shape[0]
    exact_f32 = reduction * _QMAX * _QMAX < 2.0**24
    acc_dtype = dtype if (dtype == np.float64 or exact_f32) else np.dtype(np.float64)
    weight_q = np.rint(weight_t / w_scale)
    np.clip(weight_q, -_QMAX, _QMAX, out=weight_q)
    weight_q = np.ascontiguousarray(weight_q, dtype=acc_dtype)
    return QuantizedGemm(
        weight_q=weight_q,
        w_scale=w_scale.astype(dtype),
        in_scale=in_scale,
        scale=(w_scale * in_scale).astype(dtype),
        weight_qi=np.ascontiguousarray(weight_q.astype(np.int16)),
    )


def quantize_plan_kernels(
    plan, profile, margin: float = 1.05, set_variant: bool = True
) -> List[str]:
    """Attach int8 weights to every GEMM kernel of ``plan``; return their names.

    ``profile`` must carry activation ranges for this plan's geometry —
    produced by :func:`~repro.engine.calibrate.calibrate_plan` run on *this*
    plan (a specialized plan's compacted streams see different activations
    than the dense plan, so calibrate the plan you quantize).  The range
    used per kernel is the maximum over the profile's tasks, so one
    quantized plan serves every task.  ``set_variant=False`` attaches the
    weights without switching the kernels over — the chooser can then let
    int8 compete instead of forcing it.

    Composes with dead-channel compaction: specialization preserves kernel
    names and this function reads each kernel's *current* (possibly
    compacted) ``weight_t``, so quantizing a specialized plan quantizes
    exactly the live columns.
    """
    ranges = getattr(profile, "ranges", None) or {}
    quantized: List[str] = []
    for kernel in plan.kernels:
        if getattr(kernel, "kind", None) not in ("conv", "linear"):
            continue
        per_task = [
            task_ranges[kernel.name]
            for task_ranges in ranges.values()
            if kernel.name in task_ranges
        ]
        if not per_task:
            raise KeyError(
                f"profile has no activation range for kernel '{kernel.name}'; "
                "re-run calibrate_plan on this plan (range recording is automatic)"
            )
        kernel.quant = quantize_gemm(kernel.weight_t, max(per_task), margin=margin)
        if set_variant:
            kernel.variant = "int8"
        quantized.append(kernel.name)
    if set_variant and quantized:
        choices = dict(getattr(plan, "kernel_choices", None) or {})
        choices.update({name: "int8" for name in quantized})
        plan.kernel_choices = choices
    return quantized


# ---------------------------------------------------------------------------
# The per-layer kernel chooser.
# ---------------------------------------------------------------------------
def variant_candidates(kernel) -> Sequence[str]:
    """Every variant ``kernel`` is eligible to run, default first.

    Shape gates: ``direct`` needs stride 1, ``winograd`` needs a stride-1
    3x3 (:func:`winograd_eligible`), the int8 variants need an attached
    quant payload, and ``int8spd`` additionally requires the host's integer
    datapath to beat float32 (:func:`int8_datapath_beats_float`) — there is
    no point letting the chooser time a variant that cannot win here.
    """
    kind = getattr(kernel, "kind", None)
    if kind == "conv":
        candidates = ["im2col", "blocked", "packed"]
        if kernel.stride == 1:
            candidates.append("direct")
        if winograd_eligible(kernel):
            candidates.append("winograd")
        if getattr(kernel, "quant", None) is not None:
            candidates.append("int8")
            if int8_datapath_beats_float():
                candidates.append("int8spd")
        return candidates
    if kind == "linear":
        candidates = ["dense", "blocked", "packed"]
        if getattr(kernel, "quant", None) is not None:
            candidates.append("int8")
            if int8_datapath_beats_float():
                candidates.append("int8spd")
        return candidates
    if kind == "pool":
        return list(POOL_VARIANTS)
    return ()


def set_kernel_variant(kernel, variant: str) -> None:
    """Set ``kernel.variant`` after validating eligibility."""
    candidates = variant_candidates(kernel)
    if variant not in candidates:
        name = getattr(kernel, "name", f"#{kernel.index}")
        raise ValueError(
            f"variant '{variant}' is not eligible for kernel '{name}' "
            f"(candidates: {list(candidates)})"
        )
    kernel.variant = variant


def force_kernel_variant(plan, variant: str) -> Dict[str, str]:
    """Set ``variant`` on every kernel eligible for it; return what was set.

    Ineligible kernels keep their current variant (e.g. forcing ``direct``
    leaves strided convs and FC layers alone), so a forced plan is always
    runnable.  Conv/linear naming is unified: forcing ``"im2col"`` resets
    FC kernels to their ``"dense"`` default and vice versa.
    """
    aliases = {"im2col": {"linear": "dense"}, "dense": {"conv": "im2col"}}
    chosen: Dict[str, str] = {}
    for kernel in plan.kernels:
        kind = getattr(kernel, "kind", None)
        wanted = aliases.get(variant, {}).get(kind, variant)
        if wanted in variant_candidates(kernel):
            kernel.variant = wanted
            chosen[kernel.name] = wanted
    plan.kernel_choices = dict(chosen)
    return chosen


def apply_kernel_choices(plan, choices: Dict[str, str], strict: bool = True) -> Dict[str, str]:
    """Replay a chooser's per-kernel choice map onto ``plan`` by kernel name.

    Specialization and :class:`~repro.engine.planspec.PlanSpec` rebuilds
    both preserve kernel names, so a choice map measured on one incarnation
    of a network transfers to the next.  With ``strict=False`` choices a
    kernel is not eligible for (e.g. ``int8`` on a freshly re-specialized
    plan that has not been re-quantized) are skipped instead of raising —
    the mode the online recalibration loop uses.
    """
    applied: Dict[str, str] = {}
    matched = set()
    for kernel in plan.kernels:
        name = getattr(kernel, "name", None)
        if name is None or name not in choices:
            continue
        matched.add(name)
        variant = choices[name]
        if variant not in variant_candidates(kernel):
            if strict:
                set_kernel_variant(kernel, variant)  # raises with the full message
            continue
        kernel.variant = variant
        applied[name] = variant
    unmatched = set(choices) - matched
    if unmatched and strict:
        raise KeyError(
            f"choices name kernels the plan does not have: {sorted(unmatched)}"
        )
    plan.kernel_choices = dict(applied)
    return applied


class KernelTimingCache:
    """Process-level memo of chooser measurements, keyed by geometry+variant.

    Two kernels with the same :func:`kernel_timing_key` — same kind, same
    (possibly compacted) weight shape, same conv geometry, same dtype and
    quantization signature, timed at the same batch — run the same machine
    code on the same data volumes, so one measurement serves both.  That is
    exactly the situation N per-task specialized plans, PlanSpec rebuilds
    and recalibration re-deploys create: the first chooser pass pays for the
    timings, every later pass with unchanged geometry is pure replay.
    ``hits``/``misses`` make the reuse observable (builders log it; the
    lifecycle tests assert zero re-timing across a re-deploy).
    """

    def __init__(self) -> None:
        self._times: Dict[tuple, float] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, key: tuple) -> Optional[float]:
        seconds = self._times.get(key)
        if seconds is None:
            self.misses += 1
        else:
            self.hits += 1
        return seconds

    def store(self, key: tuple, seconds: float) -> None:
        self._times[key] = float(seconds)

    def clear(self) -> None:
        self._times.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._times)


#: The process-wide default cache :func:`autotune_kernel_variants` consults.
TIMING_CACHE = KernelTimingCache()


def kernel_timing_key(kernel, variant: str, batch: int, dtype) -> tuple:
    """Hashable timing identity of (layer geometry, variant) at ``batch``.

    Covers everything that changes what the timed code path executes: kind,
    conv geometry, the *current* weight shape (so dead-channel compaction
    yields a different key than the dense layer), mask presence (the fused
    epilogue is part of the measurement), arithmetic dtype, and the quant
    container dtype for int8 variants.  Deliberately excludes weight values
    and kernel names: timings are value-independent, which is what lets one
    measurement serve every task's plan with the same shapes.
    """
    kind = getattr(kernel, "kind", None)
    if kind == "conv":
        geom: tuple = (
            "conv", kernel.in_shape, kernel.out_shape, kernel.weight_t.shape,
            kernel.kernel_size, kernel.stride, kernel.padding,
        )
    elif kind == "linear":
        geom = ("linear", kernel.weight_t.shape)
    else:
        geom = (kind, kernel.out_shape, kernel.kernel_size, kernel.stride)
    quant = getattr(kernel, "quant", None)
    quant_sig = str(quant.weight_q.dtype) if quant is not None else None
    return (
        geom,
        getattr(kernel, "mask", None) is not None,
        str(np.dtype(dtype)),
        int(batch),
        quant_sig,
        variant,
    )


def autotune_kernel_variants(
    plan,
    batch: int = 8,
    repeats: int = 3,
    seed: int = 0,
    task: Optional[str] = None,
    cache: Optional[KernelTimingCache] = None,
) -> Dict[str, str]:
    """Benchmark every eligible variant per kernel; cache winners on the plan.

    Times the real ``kernel.run`` entry point (epilogue included) on seeded
    synthetic inputs of each kernel's true serving geometry, against a real
    task plan and a scratch workspace pool, so the measured ordering is the
    ordering serving will see.  The winning variant is left set on each
    kernel and the full choice map is stored on ``plan.kernel_choices`` —
    from where :class:`~repro.engine.planspec.PlanSpec` carries it to
    spawned workers and :func:`apply_kernel_choices` replays it after
    re-specialization.

    Choices are geometry-specific: autotune the plan you intend to serve
    (dense and per-task specialized plans each get their own pass), at the
    micro-batch size serving uses.  Measurements are memoised in ``cache``
    (default: the process-wide :data:`TIMING_CACHE`) under
    :func:`kernel_timing_key`, so a second plan with the same layer shapes —
    another task's specialization, a recalibration re-deploy — resolves its
    chooser without re-timing anything; pass a fresh
    :class:`KernelTimingCache` to force cold measurements.
    """
    if batch <= 0:
        raise ValueError("batch must be positive")
    if cache is None:
        cache = TIMING_CACHE
    task_name = task if task is not None else plan.task_names()[0]
    task_plan = plan.tasks[task_name]
    pool = plan._workspaces.__class__()
    choices: Dict[str, str] = {}
    for kernel in plan.kernels:
        candidates = variant_candidates(kernel)
        if not candidates:
            continue
        times: Dict[str, float] = {}
        to_time: List[tuple] = []
        for variant in candidates:
            key = kernel_timing_key(kernel, variant, batch, plan.dtype)
            cached = cache.lookup(key)
            if cached is not None:
                times[variant] = cached
            else:
                to_time.append((variant, key))
        if to_time:
            kind = kernel.kind
            if kind == "conv":
                c_in, h, w = kernel.in_shape
                shape = (batch, h, w, c_in)
            elif kind == "linear":
                shape = (batch, kernel.weight_t.shape[0])
            else:  # pool: reconstruct the input geometry from the output shape
                c, h_out, w_out = kernel.out_shape
                k, s = kernel.kernel_size, kernel.stride
                shape = (batch, (h_out - 1) * s + k, (w_out - 1) * s + k, c)
            # Per-kernel seeding keeps the synthetic input deterministic no
            # matter which other kernels resolved from the cache.
            rng = np.random.default_rng((seed, kernel.index))
            x = np.abs(rng.normal(size=shape)).astype(plan.dtype)
            # Interleave the timing rounds across variants (A B C, A B C,
            # ...) instead of exhausting each variant's repeats back to
            # back: CPU frequency drift then biases every candidate equally,
            # so near-ties between variants resolve by actual speed rather
            # than by which one happened to run during the faster clock
            # window.
            for variant, _ in to_time:
                kernel.variant = variant
                kernel.run(x, task_plan, pool, None, None)  # warm-up: allocate buffers
                times[variant] = float("inf")
            for _ in range(repeats):
                for variant, _ in to_time:
                    kernel.variant = variant
                    start = time.perf_counter()
                    kernel.run(x, task_plan, pool, None, None)
                    times[variant] = min(times[variant], time.perf_counter() - start)
            for variant, key in to_time:
                cache.store(key, times[variant])
        best_variant = min(times, key=times.get)
        kernel.variant = best_variant
        choices[kernel.name] = best_variant
    plan.kernel_choices = dict(choices)
    return choices
