"""Generators for every figure of the paper's evaluation (Figs. 4-9).

The hardware figures are analytical: they need layer geometry (full VGG16),
sparsity profiles (either the paper's Tables II/III or profiles measured on
the surrogate workload) and a hardware spec.  Each generator returns a plain
dictionary of series/ratios which the benchmark harness prints and asserts
against the paper's headline numbers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.models.shapes import LayerShape, vgg_layer_shapes
from repro.mime.storage import (
    StorageModel,
    conventional_storage,
    mime_storage,
    storage_saving_ratio,
    storage_vs_num_tasks,
)
from repro.hardware import (
    LayerSparsityProfile,
    SystolicArraySimulator,
    SystolicArraySpec,
    case1_config,
    case2_config,
    default_spec,
    mime_config,
    pipelined_task_schedule,
    pruned_config,
    reduced_cache_spec,
    reduced_pe_spec,
    relative_throughput,
    singular_task_schedule,
)
from repro.hardware.energy import energy_saving_ratio
from repro.experiments import paper_data
from repro.experiments.config import ExperimentConfig, full_config


# ---------------------------------------------------------------------------
# Shared inputs
# ---------------------------------------------------------------------------
def paper_vgg16_shapes(config: ExperimentConfig | None = None, num_classes: int = 10) -> List[LayerShape]:
    """VGG16 layer geometry at the child-task resolution used by the hardware analyses."""
    config = config or full_config()
    return vgg_layer_shapes(
        config.hw_backbone,
        input_size=config.hw_input_size,
        in_channels=3,
        num_classes=num_classes,
        classifier_hidden=config.hw_classifier_hidden,
    )


def paper_sparsity_profiles() -> Tuple[LayerSparsityProfile, LayerSparsityProfile]:
    """(MIME, baseline) sparsity profiles built from the paper's Tables II/III."""
    mime_profile = LayerSparsityProfile(
        per_task={
            task: paper_data.complete_sparsity_profile(layers)
            for task, layers in paper_data.MIME_SPARSITY.items()
        }
    )
    baseline_profile = LayerSparsityProfile(
        per_task={
            task: paper_data.complete_sparsity_profile(layers)
            for task, layers in paper_data.BASELINE_SPARSITY.items()
        }
    )
    return mime_profile, baseline_profile


def _profiles_by_config(
    mime_profile: LayerSparsityProfile, baseline_profile: LayerSparsityProfile
) -> Dict[str, LayerSparsityProfile]:
    return {
        "mime": mime_profile,
        "default": baseline_profile,
    }


def _conv_layer_names(shapes: Sequence[LayerShape]) -> List[str]:
    return [shape.name for shape in shapes if shape.kind == "conv"]


# ---------------------------------------------------------------------------
# Figure 4 (and Figure 1): off-chip DRAM storage
# ---------------------------------------------------------------------------
def figure4_dram_storage(
    config: ExperimentConfig | None = None,
    max_tasks: int = 6,
    storage_model: StorageModel | None = None,
    parent_input_size: int = 224,
    child_input_size: int = 224,
) -> Dict[str, object]:
    """DRAM storage of conventional multi-task inference vs MIME (Fig. 1 / Fig. 4).

    The parent is ImageNet-scale VGG16 (224x224, 1000 classes, 4096-wide
    classifier).  Each conventional child task stores its own complete VGG16
    weight set; following standard ImageNet transfer-learning practice (and the
    paper's premise that every child is "the VGG16 DNN"), child inputs are
    resized to the parent resolution, so a child model is architecturally
    identical to the parent apart from its classification head.  MIME instead
    stores the parent weights once plus per-task thresholds (one per output
    neuron) and the tiny task heads.  Returns the storage curves versus the
    number of child tasks plus the saving ratio for the paper's 3-child
    configuration.
    """
    config = config or full_config()
    storage_model = storage_model or StorageModel()

    parent_shapes = vgg_layer_shapes(
        config.hw_backbone,
        input_size=parent_input_size,
        in_channels=3,
        num_classes=1000,
        classifier_hidden=config.hw_classifier_hidden,
    )
    child_names = ("cifar10", "cifar100", "fmnist")
    child_shapes = {
        name: vgg_layer_shapes(
            config.hw_backbone,
            input_size=child_input_size,
            in_channels=3,
            num_classes=classes,
            classifier_hidden=config.hw_classifier_hidden,
        )
        for name, classes in zip(child_names, config.hw_num_classes)
    }

    conventional = conventional_storage(parent_shapes, child_shapes, storage_model)
    mime = mime_storage(parent_shapes, child_shapes, storage_model)
    curve = storage_vs_num_tasks(
        parent_shapes, child_shapes["cifar10"], max_tasks=max_tasks, model=storage_model
    )
    return {
        "conventional_mb": conventional.total_megabytes,
        "mime_mb": mime.total_megabytes,
        "saving_ratio_3_tasks": storage_saving_ratio(conventional, mime),
        "paper_saving_ratio": paper_data.DRAM_STORAGE_SAVING,
        "curve": curve,
        "conventional_breakdown": {
            "parent_params": conventional.parent_params,
            "per_task_params": dict(conventional.per_task_params),
        },
        "mime_breakdown": {
            "parent_params": mime.parent_params,
            "per_task_params": dict(mime.per_task_params),
        },
    }


# ---------------------------------------------------------------------------
# Figures 5-7: energy and throughput in the two task modes
# ---------------------------------------------------------------------------
def _energy_experiment(
    schedule,
    config: ExperimentConfig,
    spec: SystolicArraySpec,
    mime_profile: LayerSparsityProfile,
    baseline_profile: LayerSparsityProfile,
) -> Dict[str, object]:
    shapes = paper_vgg16_shapes(config)
    simulator = SystolicArraySimulator(spec)
    configs = [case1_config(), case2_config(), mime_config()]
    profiles = _profiles_by_config(mime_profile, baseline_profile)
    results = simulator.compare(shapes, schedule, profiles, configs, conv_only=True)

    reports = {name: result.energy_report() for name, result in results.items()}
    case1 = reports["case1-baseline-dense"]
    case2 = reports["case2-baseline-zeroskip"]
    mime = reports["mime"]
    return {
        "layer_names": _conv_layer_names(shapes),
        "reports": reports,
        "results": results,
        "mime_vs_case1": energy_saving_ratio(case1, mime),
        "mime_vs_case2": energy_saving_ratio(case2, mime),
        "case2_vs_case1": energy_saving_ratio(case1, case2),
    }


def figure5_singular_energy(
    config: ExperimentConfig | None = None,
    spec: SystolicArraySpec | None = None,
    mime_profile: LayerSparsityProfile | None = None,
    baseline_profile: LayerSparsityProfile | None = None,
    task: str = "cifar10",
) -> Dict[str, object]:
    """Layerwise energy in Singular task mode (Fig. 5): Case-1/Case-2/MIME."""
    config = config or full_config()
    spec = spec or default_spec()
    if mime_profile is None or baseline_profile is None:
        default_mime, default_baseline = paper_sparsity_profiles()
        mime_profile = mime_profile or default_mime
        baseline_profile = baseline_profile or default_baseline
    schedule = singular_task_schedule([task], images_per_task=config.images_per_task_singular)
    output = _energy_experiment(schedule, config, spec, mime_profile, baseline_profile)
    output["mode"] = "singular"
    output["task"] = task
    return output


def figure6_pipelined_energy(
    config: ExperimentConfig | None = None,
    spec: SystolicArraySpec | None = None,
    mime_profile: LayerSparsityProfile | None = None,
    baseline_profile: LayerSparsityProfile | None = None,
    tasks: Sequence[str] = ("cifar10", "cifar100", "fmnist"),
) -> Dict[str, object]:
    """Layerwise energy in Pipelined task mode (Fig. 6): Case-1/Case-2/MIME."""
    config = config or full_config()
    spec = spec or default_spec()
    if mime_profile is None or baseline_profile is None:
        default_mime, default_baseline = paper_sparsity_profiles()
        mime_profile = mime_profile or default_mime
        baseline_profile = baseline_profile or default_baseline
    schedule = pipelined_task_schedule(list(tasks), rounds=config.pipelined_rounds)
    output = _energy_experiment(schedule, config, spec, mime_profile, baseline_profile)
    output["mode"] = "pipelined"
    output["tasks"] = list(tasks)
    return output


def figure7_pipelined_throughput(
    config: ExperimentConfig | None = None,
    spec: SystolicArraySpec | None = None,
    mime_profile: LayerSparsityProfile | None = None,
    baseline_profile: LayerSparsityProfile | None = None,
    tasks: Sequence[str] = ("cifar10", "cifar100", "fmnist"),
) -> Dict[str, object]:
    """Layerwise relative throughput in Pipelined task mode (Fig. 7)."""
    energy = figure6_pipelined_energy(config, spec, mime_profile, baseline_profile, tasks)
    results = energy["results"]
    case1 = results["case1-baseline-dense"]
    mime = results["mime"]
    case2 = results["case2-baseline-zeroskip"]
    mime_report = relative_throughput(case1, mime)
    case2_report = relative_throughput(case1, case2)
    return {
        "layer_names": energy["layer_names"],
        "mime_vs_case1": dict(mime_report.per_layer),
        "case2_vs_case1": dict(case2_report.per_layer),
        "mean_mime_vs_case1": mime_report.mean,
        "paper_range": paper_data.PIPELINED_THROUGHPUT_IMPROVEMENT,
    }


# ---------------------------------------------------------------------------
# Figure 8: MIME vs 90 %-pruned conventional models (pipelined)
# ---------------------------------------------------------------------------
def figure8_vs_pruned(
    config: ExperimentConfig | None = None,
    spec: SystolicArraySpec | None = None,
    mime_profile: LayerSparsityProfile | None = None,
    baseline_profile: LayerSparsityProfile | None = None,
    weight_sparsity: float = paper_data.PRUNED_MODEL_WEIGHT_SPARSITY,
    tasks: Sequence[str] = ("cifar10", "cifar100", "fmnist"),
) -> Dict[str, object]:
    """Pipelined-mode energy: MIME vs highly pruned per-task models (Fig. 8).

    Returns per-layer total energies for both scenarios plus the ratio
    ``pruned / mime`` (values above 1 mean MIME wins that layer).
    """
    config = config or full_config()
    spec = spec or default_spec()
    if mime_profile is None or baseline_profile is None:
        default_mime, default_baseline = paper_sparsity_profiles()
        mime_profile = mime_profile or default_mime
        baseline_profile = baseline_profile or default_baseline

    shapes = paper_vgg16_shapes(config)
    schedule = pipelined_task_schedule(list(tasks), rounds=config.pipelined_rounds)
    simulator = SystolicArraySimulator(spec)

    mime_result = simulator.run(shapes, schedule, mime_profile, mime_config(), conv_only=True)
    pruned_result = simulator.run(
        shapes,
        schedule,
        baseline_profile,
        pruned_config(weight_density=1.0 - weight_sparsity),
        conv_only=True,
    )
    mime_report = mime_result.energy_report()
    pruned_report = pruned_result.energy_report()
    ratio = energy_saving_ratio(pruned_report, mime_report)  # pruned / mime

    # The mechanism the paper describes for the conv2/conv4 crossover is the
    # parameter DRAM traffic: thresholds outnumber weights in the earliest
    # layers and the balance flips from conv5 onwards.  Report that traffic
    # ratio explicitly so the crossover can be checked in isolation from the
    # compute-energy balance.
    param_ratio = {
        layer.name: (
            pruned_result.layer(layer.name).param_dram_words
            / max(mime_result.layer(layer.name).param_dram_words, 1e-12)
        )
        for layer in mime_result.layers
    }
    return {
        "layer_names": _conv_layer_names(shapes),
        "mime_total_by_layer": mime_report.layer_totals(),
        "pruned_total_by_layer": pruned_report.layer_totals(),
        "pruned_over_mime": ratio,
        "param_dram_pruned_over_mime": param_ratio,
        "mime_wins": [name for name, value in ratio.items() if value > 1.0],
        "pruned_wins": [name for name, value in ratio.items() if value < 1.0],
        "param_dram_mime_wins": [name for name, value in param_ratio.items() if value > 1.0],
        "param_dram_pruned_wins": [name for name, value in param_ratio.items() if value < 1.0],
        "paper_late_layer_saving": paper_data.PRUNED_COMPARISON_LATE_LAYER_SAVING,
    }


# ---------------------------------------------------------------------------
# Figure 9: PE-array / cache-size ablation
# ---------------------------------------------------------------------------
def figure9_ablation(
    config: ExperimentConfig | None = None,
    mime_profile: LayerSparsityProfile | None = None,
    tasks: Sequence[str] = ("cifar10", "cifar100", "fmnist"),
    reduced_pe: int = 256,
    reduced_cache_bytes: int = 128 * 1024,
) -> Dict[str, object]:
    """MIME pipelined-mode energy under reduced PE array / cache sizes (Fig. 9)."""
    config = config or full_config()
    if mime_profile is None:
        mime_profile, _ = paper_sparsity_profiles()

    shapes = paper_vgg16_shapes(config)
    schedule = pipelined_task_schedule(list(tasks), rounds=config.pipelined_rounds)

    specs = {
        "case_a_default": default_spec(),
        "case_b_reduced_pe": reduced_pe_spec(reduced_pe),
        "case_c_reduced_cache": reduced_cache_spec(reduced_cache_bytes),
    }
    totals: Dict[str, Dict[str, float]] = {}
    for name, spec in specs.items():
        result = SystolicArraySimulator(spec).run(
            shapes, schedule, mime_profile, mime_config(), conv_only=True
        )
        totals[name] = result.energy_report().layer_totals()

    layer_names = _conv_layer_names(shapes)
    ratio_b = {
        layer: totals["case_b_reduced_pe"][layer] / totals["case_a_default"][layer]
        for layer in layer_names
    }
    ratio_c = {
        layer: totals["case_c_reduced_cache"][layer] / totals["case_a_default"][layer]
        for layer in layer_names
    }
    middle_layers = [f"conv{i}" for i in range(5, 11)]
    return {
        "layer_names": layer_names,
        "totals": totals,
        "case_b_over_a": ratio_b,
        "case_c_over_a": ratio_c,
        "case_b_middle_mean": float(np.mean([ratio_b[name] for name in middle_layers if name in ratio_b])),
        "case_c_middle_mean": float(np.mean([ratio_c[name] for name in middle_layers if name in ratio_c])),
        "paper_pe_increase_range": paper_data.PE_ABLATION_ENERGY_INCREASE,
    }
