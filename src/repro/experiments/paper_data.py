"""Reference numbers reported in the paper.

These serve two purposes:

1. They are the comparison targets recorded in EXPERIMENTS.md (paper-reported
   vs. reproduced values).
2. The layerwise sparsities of Tables II and III are used as the default
   sparsity profiles of the hardware model, so the energy/throughput figures
   can be regenerated with the paper's own activation statistics in addition
   to the statistics measured on the surrogate workloads.

Layer naming: the paper labels the reported layers ``conv2 ... conv15`` for a
VGG16 backbone.  A standard VGG16 has 13 convolutions followed by 3
fully-connected layers; we therefore map the paper's ``conv14``/``conv15`` to
the first two fully-connected layers (``fc14``/``fc15``) and note the
discrepancy in EXPERIMENTS.md.  Layers the paper does not list (conv1, conv3,
conv6, conv11) receive the mean of their listed neighbours when a complete
profile is required.
"""

from __future__ import annotations

from typing import Dict, List

# ---------------------------------------------------------------------------
# Table II — MIME: test accuracy and average layerwise neuronal sparsity
# ---------------------------------------------------------------------------
MIME_ACCURACY: Dict[str, float] = {
    "cifar10": 83.57,
    "cifar100": 59.42,
    "fmnist": 88.36,
}

MIME_SPARSITY: Dict[str, Dict[str, float]] = {
    "cifar10": {
        "conv2": 0.6493, "conv4": 0.6081, "conv5": 0.6587, "conv7": 0.6203,
        "conv8": 0.6233, "conv9": 0.6449, "conv10": 0.6679, "conv12": 0.6477,
        "conv13": 0.6553, "fc14": 0.6855, "fc15": 0.657,
    },
    "cifar100": {
        "conv2": 0.6522, "conv4": 0.5951, "conv5": 0.6373, "conv7": 0.6100,
        "conv8": 0.6121, "conv9": 0.6279, "conv10": 0.6580, "conv12": 0.6374,
        "conv13": 0.6388, "fc14": 0.6703, "fc15": 0.6571,
    },
    "fmnist": {
        "conv2": 0.6075, "conv4": 0.5634, "conv5": 0.6138, "conv7": 0.5991,
        "conv8": 0.5959, "conv9": 0.6017, "conv10": 0.6204, "conv12": 0.6014,
        "conv13": 0.6125, "fc14": 0.6138, "fc15": 0.6287,
    },
}

# ---------------------------------------------------------------------------
# Table III — conventional baselines: test accuracy and ReLU sparsity
# ---------------------------------------------------------------------------
BASELINE_ACCURACY: Dict[str, float] = {
    "cifar10": 84.25,
    "cifar100": 60.55,
    "fmnist": 90.12,
}

BASELINE_SPARSITY: Dict[str, Dict[str, float]] = {
    "cifar10": {
        "conv2": 0.4983, "conv4": 0.4506, "conv5": 0.5390, "conv7": 0.5015,
        "conv8": 0.5097, "conv9": 0.5341, "conv10": 0.5635, "conv12": 0.5358,
        "conv13": 0.5420, "fc14": 0.5627, "fc15": 0.5608,
    },
    "cifar100": {
        "conv2": 0.5030, "conv4": 0.4586, "conv5": 0.5399, "conv7": 0.5069,
        "conv8": 0.5129, "conv9": 0.5333, "conv10": 0.5633, "conv12": 0.5345,
        "conv13": 0.5449, "fc14": 0.5842, "fc15": 0.6002,
    },
    "fmnist": {
        "conv2": 0.5114, "conv4": 0.4796, "conv5": 0.5488, "conv7": 0.5230,
        "conv8": 0.5260, "conv9": 0.5329, "conv10": 0.5503, "conv12": 0.5280,
        "conv13": 0.5343, "fc14": 0.5507, "fc15": 0.5820,
    },
}

# Layers evaluated in the paper's figures (even-numbered convolutional layers
# plus the layers listed in Tables II/III).
PAPER_REPORTED_LAYERS: List[str] = [
    "conv2", "conv4", "conv5", "conv7", "conv8", "conv9", "conv10",
    "conv12", "conv13", "fc14", "fc15",
]

# The convolutional layers plotted in Figures 5-9 ("even-numbered" per the paper).
FIGURE_CONV_LAYERS: List[str] = [
    "conv2", "conv4", "conv6", "conv8", "conv10", "conv12",
]

# ---------------------------------------------------------------------------
# Headline results quoted in the text
# ---------------------------------------------------------------------------
PARENT_ACCURACY = 73.36  # VGG16 / ImageNet top-1 (%)
DRAM_STORAGE_SAVING = 3.48  # Fig. 4, 3 child tasks
SINGULAR_ENERGY_SAVING_VS_CASE1 = (1.8, 2.5)  # Fig. 5
SINGULAR_ENERGY_SAVING_VS_CASE2 = (1.07, 1.30)
PIPELINED_ENERGY_SAVING_VS_CASE1 = (2.4, 3.1)  # Fig. 6
PIPELINED_ENERGY_SAVING_VS_CASE2 = (1.3, 2.4)
PIPELINED_THROUGHPUT_IMPROVEMENT = (2.8, 3.0)  # Fig. 7
PRUNED_COMPARISON_LATE_LAYER_SAVING = (1.36, 2.0)  # Fig. 8, conv5 onwards
PE_ABLATION_ENERGY_INCREASE = (1.26, 1.41)  # Fig. 9, conv5-conv10, PE 1024 -> 256
PRUNED_MODEL_WEIGHT_SPARSITY = 0.9  # Fig. 8 comparison models

# VGG16 layer names in our convention (13 convolutions + 3 FC layers).
VGG16_CONV_LAYERS: List[str] = [f"conv{i}" for i in range(1, 14)]
VGG16_FC_LAYERS: List[str] = ["fc14", "fc15", "fc16"]


def complete_sparsity_profile(partial: Dict[str, float]) -> Dict[str, float]:
    """Fill the layers the paper does not list with neighbour averages.

    ``partial`` maps a subset of VGG16 layer names to sparsities; the returned
    dict covers every convolution plus fc14/fc15 (the masked layers).
    """
    all_layers = VGG16_CONV_LAYERS + ["fc14", "fc15"]
    listed = [name for name in all_layers if name in partial]
    if not listed:
        raise ValueError("the partial profile lists no known layer")
    completed: Dict[str, float] = {}
    for index, name in enumerate(all_layers):
        if name in partial:
            completed[name] = partial[name]
            continue
        # Nearest listed neighbours on each side (may be missing at the ends).
        before = next(
            (partial[all_layers[j]] for j in range(index - 1, -1, -1) if all_layers[j] in partial),
            None,
        )
        after = next(
            (partial[all_layers[j]] for j in range(index + 1, len(all_layers)) if all_layers[j] in partial),
            None,
        )
        neighbours = [value for value in (before, after) if value is not None]
        completed[name] = float(sum(neighbours) / len(neighbours))
    return completed
