"""Experiment harness reproducing every table and figure of the paper.

* :mod:`repro.experiments.paper_data` — the numbers reported in the paper
  (Tables II/III sparsities & accuracies, headline ratios) used both as
  reference points and as default sparsity profiles for the hardware model.
* :mod:`repro.experiments.config` — experiment-scale configuration.
* :mod:`repro.experiments.workloads` — trains the surrogate parent, MIME
  thresholds, conventional baselines and pruned models.
* :mod:`repro.experiments.tables` / :mod:`repro.experiments.figures` — generate
  each table/figure of the evaluation section.
* :mod:`repro.experiments.report` — plain-text rendering of the results.
"""

from repro.experiments import paper_data
from repro.experiments.config import ExperimentConfig, fast_config, full_config
from repro.experiments.workloads import MultiTaskWorkload, build_workload
from repro.experiments.tables import (
    table2_mime_accuracy_and_sparsity,
    table3_baseline_accuracy_and_sparsity,
)
from repro.experiments.figures import (
    figure4_dram_storage,
    figure5_singular_energy,
    figure6_pipelined_energy,
    figure7_pipelined_throughput,
    figure8_vs_pruned,
    figure9_ablation,
    paper_sparsity_profiles,
    paper_vgg16_shapes,
)
from repro.experiments.report import (
    render_table,
    render_energy_report,
    render_ratio_table,
)

__all__ = [
    "paper_data",
    "ExperimentConfig",
    "fast_config",
    "full_config",
    "MultiTaskWorkload",
    "build_workload",
    "table2_mime_accuracy_and_sparsity",
    "table3_baseline_accuracy_and_sparsity",
    "figure4_dram_storage",
    "figure5_singular_energy",
    "figure6_pipelined_energy",
    "figure7_pipelined_throughput",
    "figure8_vs_pruned",
    "figure9_ablation",
    "paper_sparsity_profiles",
    "paper_vgg16_shapes",
    "render_table",
    "render_energy_report",
    "render_ratio_table",
]
