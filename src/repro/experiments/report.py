"""Plain-text rendering of experiment results.

The benchmark harness prints human-readable tables so running
``pytest benchmarks/ --benchmark-only -s`` shows, for every table/figure of the
paper, the same rows/series the paper reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.hardware.energy import LayerEnergyReport


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render an ASCII table with aligned columns."""
    rows = [[_format(value) for value in row] for row in rows]
    headers = [str(header) for header in headers]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    separator = "-+-".join("-" * width for width in widths)
    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(separator)
    parts.extend(line(row) for row in rows)
    return "\n".join(parts)


def _format(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.3g}"
        return f"{value:.4g}"
    return str(value)


def render_energy_report(
    reports: Dict[str, LayerEnergyReport],
    layer_names: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Render per-layer total energy for several scenarios side by side."""
    scenario_names = list(reports)
    if layer_names is None:
        layer_names = reports[scenario_names[0]].layer_names()
    headers = ["layer"] + scenario_names
    rows = []
    for layer in layer_names:
        row: List[object] = [layer]
        for name in scenario_names:
            breakdown = reports[name].per_layer.get(layer)
            row.append(breakdown.total if breakdown is not None else "-")
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_ratio_table(
    ratios: Dict[str, float], title: str = "", value_name: str = "ratio"
) -> str:
    """Render a ``{layer: ratio}`` mapping as a two-column table."""
    rows = [[layer, value] for layer, value in ratios.items()]
    return render_table(["layer", value_name], rows, title=title)


def render_sparsity_table(
    rows: Dict[str, Dict[str, object]],
    layer_names: Sequence[str] | None = None,
    title: str = "",
    accuracy_scale: float = 1.0,
) -> str:
    """Render a Table II / Table III style accuracy + layerwise sparsity table."""
    if not rows:
        return title
    first_task = next(iter(rows))
    if layer_names is None:
        layer_names = list(rows[first_task]["layerwise_sparsity"])
    headers = ["task", "accuracy"] + list(layer_names)
    table_rows = []
    for task, data in rows.items():
        row: List[object] = [task, float(data["test_accuracy"]) * accuracy_scale]
        sparsity = data["layerwise_sparsity"]
        row.extend(sparsity.get(layer, "-") for layer in layer_names)
        table_rows.append(row)
    return render_table(headers, table_rows, title=title)
