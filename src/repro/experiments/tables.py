"""Generators for Table II and Table III of the paper.

Both tables report, per child task, the test accuracy and the average
layerwise neuronal sparsity.  The generators take a trained
:class:`repro.experiments.workloads.MultiTaskWorkload` and return plain
dictionaries so the benchmark harness can print them and compare them against
the paper's reference values in :mod:`repro.experiments.paper_data`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.workloads import MultiTaskWorkload
from repro.experiments import paper_data


def _table_rows(
    accuracies: Dict[str, float],
    sparsities: Dict[str, Dict[str, float]],
) -> Dict[str, Dict[str, object]]:
    rows: Dict[str, Dict[str, object]] = {}
    for task, accuracy in accuracies.items():
        rows[task] = {
            "test_accuracy": accuracy,
            "layerwise_sparsity": dict(sparsities.get(task, {})),
            "mean_sparsity": (
                sum(sparsities[task].values()) / len(sparsities[task])
                if task in sparsities and sparsities[task]
                else 0.0
            ),
        }
    return rows


def table2_mime_accuracy_and_sparsity(workload: MultiTaskWorkload) -> Dict[str, Dict[str, object]]:
    """Reproduce Table II from the trained surrogate workload.

    Returns ``{task: {"test_accuracy", "layerwise_sparsity", "mean_sparsity"}}``
    with accuracies in [0, 1] and sparsities in [0, 1].
    """
    if not workload.mime_accuracy:
        raise ValueError("the workload was built without MIME training")
    sparsities = {task: report.per_layer for task, report in workload.mime_sparsity.items()}
    return _table_rows(workload.mime_accuracy, sparsities)


def table3_baseline_accuracy_and_sparsity(workload: MultiTaskWorkload) -> Dict[str, Dict[str, object]]:
    """Reproduce Table III (conventional baselines) from the trained workload."""
    if not workload.baseline_accuracy:
        raise ValueError("the workload was built without baseline training")
    sparsities = {task: report.per_layer for task, report in workload.baseline_sparsity.items()}
    return _table_rows(workload.baseline_accuracy, sparsities)


def paper_table2_reference() -> Dict[str, Dict[str, object]]:
    """Table II exactly as reported in the paper (accuracies in percent)."""
    return _table_rows(paper_data.MIME_ACCURACY, paper_data.MIME_SPARSITY)


def paper_table3_reference() -> Dict[str, Dict[str, object]]:
    """Table III exactly as reported in the paper (accuracies in percent)."""
    return _table_rows(paper_data.BASELINE_ACCURACY, paper_data.BASELINE_SPARSITY)


def compare_sparsity_ordering(
    mime_rows: Dict[str, Dict[str, object]],
    baseline_rows: Dict[str, Dict[str, object]],
) -> List[str]:
    """Check the paper's qualitative claim: MIME sparsity exceeds ReLU sparsity.

    Returns the list of tasks for which the claim holds (mean MIME sparsity
    strictly greater than mean baseline sparsity).
    """
    holds: List[str] = []
    for task in mime_rows:
        if task not in baseline_rows:
            continue
        if mime_rows[task]["mean_sparsity"] > baseline_rows[task]["mean_sparsity"]:
            holds.append(task)
    return holds
