"""Experiment-scale configuration.

The algorithmic experiments (threshold training, baselines, pruned models) run
on synthetic surrogate workloads whose size is set here.  ``fast_config`` runs
in a few seconds and is what the test-suite and the pytest benchmarks use;
``full_config`` trains longer / larger surrogates for more faithful accuracy
and sparsity numbers.

The hardware experiments are analytical and always use the full VGG16 layer
geometry; ``hw_input_size`` sets the child-task resolution fed to the
backbone.  The default of 112 is the smallest resolution consistent with the
paper's observation that thresholds outnumber weights only in conv2/conv4 and
the crossover happens at conv5 (Fig. 8) — see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs controlling the surrogate workload and the hardware analyses."""

    # --- surrogate (trainable) workload ---------------------------------------
    backbone: str = "vgg_small"
    backbone_input_size: int = 32
    task_scale: float = 1.0
    samples_per_class: int | None = None
    parent_epochs: int = 8
    child_epochs: int = 10
    mime_epochs: int = 10
    batch_size: int = 32
    learning_rate: float = 1e-3
    mime_beta: float = 1e-6
    init_threshold: float = 0.05
    pruned_sparsity: float = 0.9
    seed: int = 7

    # --- hardware (analytical) experiments -------------------------------------
    hw_backbone: str = "vgg16"
    hw_input_size: int = 112
    hw_num_classes: Tuple[int, int, int] = (10, 100, 10)
    hw_classifier_hidden: Tuple[int, ...] = (4096, 4096)
    images_per_task_singular: int = 3
    pipelined_rounds: int = 1

    def __post_init__(self) -> None:
        if self.task_scale <= 0:
            raise ValueError("task_scale must be positive")
        if min(self.parent_epochs, self.child_epochs, self.mime_epochs, self.batch_size) <= 0:
            raise ValueError("epochs and batch size must be positive")
        if not 0.0 <= self.pruned_sparsity < 1.0:
            raise ValueError("pruned_sparsity must lie in [0, 1)")
        if self.hw_input_size <= 0 or self.backbone_input_size <= 0:
            raise ValueError("input sizes must be positive")


def fast_config() -> ExperimentConfig:
    """A configuration that trains the full multi-task workload in seconds.

    Used by tests and pytest benchmarks: tiny backbone, reduced class counts
    and sample counts, few epochs.
    """
    return ExperimentConfig(
        backbone="vgg_tiny",
        backbone_input_size=16,
        task_scale=0.3,
        samples_per_class=16,
        parent_epochs=4,
        child_epochs=5,
        mime_epochs=6,
        batch_size=16,
    )


def full_config() -> ExperimentConfig:
    """The default (still CPU-feasible) surrogate configuration."""
    return ExperimentConfig()
