"""Shared workload builders behind the serving-facing CLI commands.

``serve``, ``serve-bench`` and ``export`` all need the same three steps —
declare the workload knobs, build a randomly-initialised multi-task network
plus its compiled plan, and optionally calibrate/specialize per-task plans.
This module is the single home for that plumbing (it used to be duplicated
inside ``repro.cli``), plus the small JSON-trajectory helper the benchmark
files and ``serve-bench --json`` share.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, Optional


def positive_int(value: str) -> int:
    parsed = int(value)
    if parsed <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return parsed


def unit_float(value: str) -> float:
    parsed = float(value)
    if not 0.0 <= parsed < 1.0:
        raise argparse.ArgumentTypeError(f"expected a float in [0, 1), got {value}")
    return parsed


def add_workload_arguments(sub: argparse.ArgumentParser, default_requests: int) -> None:
    """The model/traffic/specialization knobs every serving command shares."""
    sub.add_argument("--model", choices=["vgg_tiny", "vgg_small"], default="vgg_tiny")
    sub.add_argument("--input-size", type=positive_int, default=16,
                     help="square input resolution")
    sub.add_argument("--tasks", type=positive_int, default=3,
                     help="number of child tasks to register")
    sub.add_argument("--requests", type=positive_int, default=default_requests,
                     help="total images in the request stream")
    sub.add_argument("--micro-batch", type=positive_int, default=8,
                     help="engine micro-batch size")
    sub.add_argument("--dtype", choices=["float32", "float64"], default="float32",
                     help="engine compute dtype (training path is always float64)")
    sub.add_argument("--seed", type=int, default=7)
    sub.add_argument("--dead-fraction", type=unit_float, default=0.0,
                     help="fraction of each masked layer's channels made structurally "
                          "dead per task (models the paper's per-task structured sparsity)")
    sub.add_argument("--specialize", action="store_true",
                     help="calibrate and serve per-task dead-channel-eliminated plans")
    sub.add_argument("--dead-threshold", type=unit_float, default=0.0,
                     help="calibrated survival rate at or below which a channel "
                          "counts as dead (used with --specialize)")
    sub.add_argument("--exact-specialize", action="store_true",
                     help="bit-exact specialization (scatter mode): logits match the "
                          "dense plan bit for bit, at the cost of the throughput win")
    sub.add_argument("--dynamic", action="store_true",
                     help="autotune and enable the dynamic sparse row-gather fast path")
    sub.add_argument("--kernels",
                     choices=["default", "auto", "im2col", "blocked", "packed",
                              "direct", "winograd"],
                     default="default",
                     help="kernel variant selection: 'auto' runs the per-layer chooser "
                          "on every served plan, a variant name forces it everywhere "
                          "it is eligible, 'default' keeps the baseline im2col path")
    sub.add_argument("--int8", action="store_true",
                     help="attach calibrated int8 weights to every GEMM kernel; with "
                          "--kernels=auto int8 competes in the chooser, otherwise it "
                          "is switched on directly")
    sub.add_argument("--coalesce", action="store_true",
                     help="cross-task batch coalescing: tasks sharing a backbone "
                          "batch together and execute as one shared-backbone pass "
                          "with per-row threshold masks (the many-task fast path)")


def add_fault_arguments(sub: argparse.ArgumentParser) -> None:
    """Supervision/chaos knobs of the process backend (``--backend=process``)."""
    sub.add_argument("--max-retries", type=int, default=2,
                     help="re-dispatch budget per accepted request after a shard "
                          "death (process backend)")
    sub.add_argument("--heartbeat-interval", type=float, default=0.25,
                     help="seconds between supervisor heartbeat/respawn ticks "
                          "(process backend)")
    sub.add_argument("--flatline-after", type=positive_int, default=8,
                     help="consecutive unanswered heartbeats before an "
                          "alive-but-silent shard is killed and replaced")
    sub.add_argument("--no-restart", action="store_true",
                     help="disable respawning dead shard workers")
    sub.add_argument("--chaos", metavar="SPEC", default=None,
                     help="fault-injection schedule, e.g. "
                          "'crash:0@2.5,slow:1:0.05@1,drop_heartbeats:2@3' "
                          "(kind:shard[:arg]@seconds, comma-separated; arms the "
                          "worker-side chaos hooks)")


def add_metrics_arguments(sub: argparse.ArgumentParser) -> None:
    """Observability knobs: the Prometheus endpoint and window cadence."""
    sub.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                     help="serve Prometheus text metrics on this port while the "
                          "run is live (0 = pick an ephemeral port; the chosen "
                          "port is printed)")
    sub.add_argument("--metrics-window", type=float, default=1.0, metavar="SECONDS",
                     help="windowed-snapshot interval of the metrics stream "
                          "(seconds on the runtime clock)")


def build_serving_network(args: argparse.Namespace):
    """A randomly-initialised multi-task network + compiled plan for benchmarks."""
    import numpy as np

    from repro.engine import compile_network
    from repro.mime import MimeNetwork, add_structured_sparsity_task
    from repro.models import vgg_small, vgg_tiny

    rng = np.random.default_rng(args.seed)
    builder = {"vgg_tiny": vgg_tiny, "vgg_small": vgg_small}[args.model]
    backbone = builder(num_classes=8, input_size=args.input_size, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for index in range(args.tasks):
        # Jittered thresholds give each task a distinct sparsity level;
        # --dead-fraction additionally kills a per-task channel subset (the
        # paper's structured sparsity that specialization exploits).
        add_structured_sparsity_task(
            network, f"task{index}", num_classes=10, rng=rng,
            dead_fraction=getattr(args, "dead_fraction", 0.0), threshold_jitter=0.2,
        )
    plan = compile_network(network, dtype=np.dtype(args.dtype))
    return network, backbone, plan, rng


def configure_kernel_variants(args: argparse.Namespace, plan, profile=None,
                              label: str = "plan") -> None:
    """Apply the ``--kernels`` / ``--int8`` flags to one executable plan.

    Runs the supported pipeline order — quantize first (so ``auto`` lets the
    int8 variant compete), then choose.  ``--int8`` needs calibrated
    activation ranges measured on *this* plan's geometry; when ``profile``
    lacks them (or is ``None``) a range-recording calibration pass runs here.
    """
    from repro.engine import (
        autotune_kernel_variants,
        calibrate_plan,
        force_kernel_variant,
        quantize_plan_kernels,
    )

    mode = getattr(args, "kernels", "default")
    int8 = getattr(args, "int8", False)
    if mode == "default" and not int8:
        return
    if int8:
        if profile is None or not getattr(profile, "ranges", None):
            profile = calibrate_plan(plan, batch_size=args.micro_batch, seed=args.seed)
        quantized = quantize_plan_kernels(plan, profile, set_variant=(mode != "auto"))
        if mode != "auto":
            print(f"int8 kernels on {label}: {', '.join(quantized)}")
    if mode == "auto":
        from repro.engine.kernels import TIMING_CACHE

        hits_before = TIMING_CACHE.hits
        choices = autotune_kernel_variants(plan, batch=args.micro_batch, seed=args.seed)
        reused = TIMING_CACHE.hits - hits_before
        chosen = ", ".join(f"{name}={variant}" for name, variant in choices.items())
        note = f" ({reused} cached timings reused)" if reused else ""
        print(f"kernel chooser on {label}: {{{chosen}}}{note}")
    elif mode != "default":
        force_kernel_variant(plan, mode)


def maybe_specialize(args: argparse.Namespace, plan, profile=None) -> Dict[str, object]:
    """Calibrate + specialize per-task plans when ``--specialize`` was given.

    ``profile`` short-circuits the calibration pass with an existing
    :class:`~repro.engine.CalibrationProfile` (the export command calibrates
    once and ships the same profile inside the artifact).

    Also the single place the ``--kernels`` / ``--int8`` flags take effect:
    the dense plan and every specialized plan are configured here, each on
    its own geometry (a compacted GEMM can prefer a different variant than
    its dense ancestor, so the chooser reruns per plan).
    """
    from repro.engine import autotune_dynamic_crossover, specialize_tasks

    dynamic = getattr(args, "dynamic", False)
    if dynamic:
        config = autotune_dynamic_crossover(plan, batch=args.micro_batch, seed=args.seed)
        tuned = ", ".join(f"{name}={value:.2f}" for name, value in config.crossover.items())
        print(f"dynamic sparse fast path: autotuned crossovers {{{tuned}}}")
    if not getattr(args, "specialize", False):
        configure_kernel_variants(args, plan, profile=profile, label="dense plan")
        return {}
    specialized = specialize_tasks(
        plan,
        profile=profile,
        dead_threshold=args.dead_threshold,
        compact_reduction=not getattr(args, "exact_specialize", False),
        calibration_seed=args.seed,
    )
    configure_kernel_variants(args, plan, profile=profile, label="dense plan")
    for name, spec in sorted(specialized.items()):
        if dynamic:
            # Crossovers are geometry-specific: the compacted GEMMs have
            # different gather-vs-dense economics than the dense plan's, so
            # each specialized plan gets its own measured config.
            autotune_dynamic_crossover(spec, batch=args.micro_batch, seed=args.seed)
        # Specialization resets variants (new geometry); ranges measured on
        # the dense plan do not transfer to compacted activations, so each
        # specialized plan calibrates and chooses for itself.
        configure_kernel_variants(args, spec, label=f"specialized plan '{name}'")
        dead = sum(spec.dead_channel_counts().values())
        print(
            f"specialized plan for {name}: {dead} dead channels eliminated, "
            f"{100.0 * spec.mac_reduction():.1f}% of dense MACs avoided"
        )
    return specialized


def load_artifact_plans(path: str):
    """Resolve ``path`` to a (artifact, store-or-None) pair for serving.

    ``path`` may be one artifact directory (contains ``manifest.json``) or a
    :class:`~repro.artifacts.ModelStore` root, in which case the ``latest``
    version is loaded and the store is returned so a recalibration loop can
    publish follow-up versions back into it.
    """
    from repro.artifacts import MANIFEST_NAME, ArtifactError, ModelArtifact, ModelStore

    root = Path(path)
    if (root / MANIFEST_NAME).is_file():
        return ModelArtifact.load(root), None
    store = ModelStore(root)
    if store.latest() is None:
        raise ArtifactError(
            f"{path} is neither an artifact directory nor a model store with a "
            "latest version"
        )
    return store.load(), store


def append_bench_entry(path: str | Path, entry: dict) -> Path:
    """Append one machine-readable entry to a ``BENCH_*.json`` trajectory file."""
    file = Path(path)
    payload = json.loads(file.read_text()) if file.exists() else {"entries": []}
    payload["entries"].append(entry)
    file.write_text(json.dumps(payload, indent=2) + "\n")
    return file


def build_runtime(args: argparse.Namespace, plan, specialized, recorder=None,
                  max_pending: Optional[int] = None):
    """Construct the serving backend the CLI flags select."""
    from repro.serving import BACKENDS

    kwargs = dict(
        policy=getattr(args, "policy", "fifo-deadline"),
        micro_batch=args.micro_batch,
        max_wait=getattr(args, "max_wait", 0.02),
        workers=args.workers,
        specialized=specialized,
    )
    if recorder is not None:
        kwargs["recorder"] = recorder
    if max_pending is not None:
        kwargs["max_pending"] = max_pending
    if getattr(args, "coalesce", False):
        kwargs["coalesce"] = True
    if getattr(args, "metrics_window", None) is not None:
        kwargs["window_interval"] = args.metrics_window
    if getattr(args, "max_retries", None) is not None:
        kwargs["max_retries"] = args.max_retries
    if args.backend == "process":
        # Supervision knobs only exist on the process backend.
        if getattr(args, "heartbeat_interval", None) is not None:
            kwargs["heartbeat_interval"] = args.heartbeat_interval
        if getattr(args, "flatline_after", None) is not None:
            kwargs["flatline_after"] = args.flatline_after
        if getattr(args, "no_restart", False):
            kwargs["restart"] = False
        if getattr(args, "chaos", None):
            kwargs["chaos"] = True
    return BACKENDS[args.backend](plan, **kwargs)


def start_chaos_schedule(args: argparse.Namespace, runtime):
    """Launch the ``--chaos`` fault schedule against a started runtime.

    Returns the running :class:`~repro.serving.faults.FaultSchedule`, or
    ``None`` when no schedule was requested.  Only meaningful on the process
    backend — the thread backend shares a fate with its workers.
    """
    spec = getattr(args, "chaos", None)
    if not spec:
        return None
    if args.backend != "process":
        raise SystemExit("--chaos requires --backend=process")
    from repro.serving import FaultSchedule, parse_chaos_spec

    events = parse_chaos_spec(spec)
    print(f"chaos schedule armed: {spec}")
    return FaultSchedule(runtime, events).start()


def start_metrics_server(args: argparse.Namespace, runtime):
    """Start the ``--metrics-port`` Prometheus endpoint for a started runtime.

    Also starts the runtime stream's background window poller so scraped
    window gauges move without anyone calling ``poll()`` by hand.  Returns
    the running :class:`~repro.serving.MetricsServer`, or ``None`` when no
    port was requested (note ``0`` requests an *ephemeral* port and is not
    "off").
    """
    port = getattr(args, "metrics_port", None)
    if port is None:
        return None
    from repro.serving import MetricsServer

    runtime.stream.start()
    server = MetricsServer(runtime.stream, port=port).start()
    print(f"metrics endpoint: {server.url}")
    return server
