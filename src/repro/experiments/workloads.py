"""Builds and trains the full multi-task surrogate workload.

The workload mirrors the paper's experimental pipeline end to end:

1. train a parent backbone on the parent-task surrogate (stand-in for
   VGG16/ImageNet);
2. MIME: freeze the parent weights and train per-child-task thresholds;
3. conventional baseline: clone the parent and fine-tune all weights per child;
4. pruned baseline: prune clones at initialisation to 90 % layerwise weight
   sparsity and train them;
5. measure per-task layerwise activation sparsity for MIME (threshold masks)
   and the baselines (ReLU), producing the sparsity profiles the hardware
   model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.models import build_model
from repro.models.vgg import VGG
from repro.datasets import DataLoader, TaskSpec, build_child_tasks, imagenet_surrogate
from repro.mime import MimeNetwork, ThresholdTrainer, average_sparsity_over_loader, SparsityReport
from repro.baselines import (
    SupervisedTrainer,
    clone_vgg,
    finetune_child,
    measure_weight_sparsity,
    prune_at_init,
    train_parent,
)
from repro.hardware.scenario import LayerSparsityProfile
from repro.experiments.config import ExperimentConfig, full_config
from repro.utils.rng import new_rng
from repro.utils.logging import get_logger

_LOGGER = get_logger("experiments.workloads")


@dataclass
class MultiTaskWorkload:
    """Everything produced by training the surrogate multi-task pipeline."""

    config: ExperimentConfig
    parent_task: TaskSpec
    child_tasks: List[TaskSpec]
    parent_model: VGG
    parent_accuracy: float

    mime_network: MimeNetwork | None = None
    mime_accuracy: Dict[str, float] = field(default_factory=dict)
    mime_sparsity: Dict[str, SparsityReport] = field(default_factory=dict)

    baseline_models: Dict[str, VGG] = field(default_factory=dict)
    baseline_accuracy: Dict[str, float] = field(default_factory=dict)
    baseline_sparsity: Dict[str, SparsityReport] = field(default_factory=dict)

    pruned_models: Dict[str, VGG] = field(default_factory=dict)
    pruned_accuracy: Dict[str, float] = field(default_factory=dict)
    pruned_weight_sparsity: Dict[str, float] = field(default_factory=dict)

    def child_names(self) -> List[str]:
        return [task.name for task in self.child_tasks]

    def mime_sparsity_profile(self) -> LayerSparsityProfile:
        """Measured MIME sparsities as a hardware sparsity profile."""
        per_task = {name: dict(report.per_layer) for name, report in self.mime_sparsity.items()}
        return LayerSparsityProfile(per_task=per_task)

    def baseline_sparsity_profile(self) -> LayerSparsityProfile:
        """Measured baseline (ReLU) sparsities as a hardware sparsity profile."""
        per_task = {name: dict(report.per_layer) for name, report in self.baseline_sparsity.items()}
        return LayerSparsityProfile(per_task=per_task)


def _loader(task: TaskSpec, config: ExperimentConfig, split: str, rng: np.random.Generator) -> DataLoader:
    dataset = task.train if split == "train" else task.test
    return DataLoader(dataset, batch_size=config.batch_size, shuffle=split == "train", rng=rng)


def build_workload(
    config: ExperimentConfig | None = None,
    include_mime: bool = True,
    include_baselines: bool = True,
    include_pruned: bool = False,
    verbose: bool = False,
) -> MultiTaskWorkload:
    """Train the surrogate workload described by ``config``.

    ``include_pruned`` is off by default because the 90 %-sparse models are
    only needed by the Fig. 8 experiment.
    """
    config = config or full_config()
    rng = new_rng(config.seed)

    # --- parent -----------------------------------------------------------------
    parent_task = imagenet_surrogate(
        scale=config.task_scale,
        backbone_size=config.backbone_input_size,
        samples_per_class=config.samples_per_class or 40,
        seed=config.seed + 1000,
    )
    parent_model = build_model(
        config.backbone,
        num_classes=parent_task.num_classes,
        in_channels=3,
        input_size=config.backbone_input_size,
        rng=new_rng(config.seed),
    )
    _LOGGER.info("training parent task '%s' (%d classes)", parent_task.name, parent_task.num_classes)
    _, parent_accuracy = train_parent(
        parent_model,
        parent_task,
        epochs=config.parent_epochs,
        batch_size=config.batch_size,
        lr=config.learning_rate,
        rng=rng,
        verbose=verbose,
    )

    child_tasks = build_child_tasks(
        scale=config.task_scale,
        backbone_size=config.backbone_input_size,
        samples_per_class=config.samples_per_class,
    )

    workload = MultiTaskWorkload(
        config=config,
        parent_task=parent_task,
        child_tasks=child_tasks,
        parent_model=parent_model,
        parent_accuracy=parent_accuracy,
    )

    if include_mime:
        _train_mime(workload, rng, verbose)
    if include_baselines:
        _train_baselines(workload, rng, verbose)
    if include_pruned:
        _train_pruned(workload, rng, verbose)
    return workload


def _train_mime(workload: MultiTaskWorkload, rng: np.random.Generator, verbose: bool) -> None:
    config = workload.config
    network = MimeNetwork(
        clone_vgg(workload.parent_model),
        init_threshold=config.init_threshold,
    )
    trainer = ThresholdTrainer(network, lr=config.learning_rate, beta=config.mime_beta)
    for task in workload.child_tasks:
        network.add_task(task.name, task.num_classes, rng=rng)
        _LOGGER.info("training MIME thresholds for '%s'", task.name)
        trainer.train_task(
            task.name,
            _loader(task, config, "train", rng),
            epochs=config.mime_epochs,
            verbose=verbose,
        )
        _, accuracy = trainer.evaluate(task.name, _loader(task, config, "test", rng))
        workload.mime_accuracy[task.name] = accuracy
        network.set_active_task(task.name)
        workload.mime_sparsity[task.name] = average_sparsity_over_loader(
            network, _loader(task, config, "test", rng), task=task.name
        )
    workload.mime_network = network


def _train_baselines(workload: MultiTaskWorkload, rng: np.random.Generator, verbose: bool) -> None:
    config = workload.config
    from repro.mime.sparsity import average_sparsity_over_loader as measure

    for task in workload.child_tasks:
        _LOGGER.info("fine-tuning conventional baseline for '%s'", task.name)
        child_model, _, accuracy = finetune_child(
            workload.parent_model,
            task,
            epochs=config.child_epochs,
            batch_size=config.batch_size,
            lr=config.learning_rate,
            rng=rng,
            verbose=verbose,
        )
        workload.baseline_models[task.name] = child_model
        workload.baseline_accuracy[task.name] = accuracy
        workload.baseline_sparsity[task.name] = measure(
            child_model, _loader(task, config, "test", rng)
        )


def _train_pruned(workload: MultiTaskWorkload, rng: np.random.Generator, verbose: bool) -> None:
    config = workload.config
    for task in workload.child_tasks:
        _LOGGER.info("training %.0f%%-pruned model for '%s'", config.pruned_sparsity * 100, task.name)
        model = build_model(
            config.backbone,
            num_classes=task.num_classes,
            in_channels=3,
            input_size=config.backbone_input_size,
            rng=new_rng(config.seed + 17),
        )
        train_loader = _loader(task, config, "train", rng)
        masks = prune_at_init(
            model,
            sparsity=config.pruned_sparsity,
            method="snip",
            batches=iter(train_loader),
            max_batches=1,
        )
        trainer = SupervisedTrainer(
            model, lr=config.learning_rate, optimizer="adam", weight_masks=masks
        )
        trainer.fit(train_loader, epochs=config.child_epochs, verbose=verbose)
        _, accuracy = trainer.evaluate(_loader(task, config, "test", rng))
        workload.pruned_models[task.name] = model
        workload.pruned_accuracy[task.name] = accuracy
        sparsities = measure_weight_sparsity(model)
        workload.pruned_weight_sparsity[task.name] = float(np.mean(list(sparsities.values())))
