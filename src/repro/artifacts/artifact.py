"""The on-disk model bundle: one directory, one servable model version.

Layout of a saved artifact (all paths relative to the artifact directory)::

    manifest.json           schema version, model metadata, content hashes
    plan.pkl                dense PlanSpec (pickle — carries float tensors)
    specialized/<task>.pkl  per-task specialized PlanSpecs (optional)
    calibration.json        CalibrationProfile the specializations came from
    weights.npz             flat training-side state (backbone + per-task
                            thresholds/heads), for retraining/recalibration

The manifest is written last, so a directory with a readable, hash-consistent
manifest is a complete artifact by construction; :meth:`ModelArtifact.verify`
re-hashes every payload file against the manifest and refuses artifacts whose
bytes drifted.  Plans travel as :class:`~repro.engine.PlanSpec` (the same
picklable transport the process-sharded serving backend ships to its
workers), so ``load`` + :meth:`ModelArtifact.build_plans` reconstructs plans
that produce **bit-identical** logits to the ones that were saved — in this
process or in a freshly spawned one.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.engine.calibrate import CalibrationProfile
from repro.engine.plan import EnginePlan
from repro.engine.planspec import PlanSpec
from repro.utils.serialization import load_state_dict, save_state_dict

__all__ = [
    "ArtifactError",
    "ArtifactIntegrityError",
    "MANIFEST_NAME",
    "SCHEMA_VERSION",
    "ModelArtifact",
]

#: Manifest schema version this module writes and the newest it can read.
SCHEMA_VERSION = 1
MANIFEST_NAME = "manifest.json"
_PLAN_FILE = "plan.pkl"
_CALIBRATION_FILE = "calibration.json"
_WEIGHTS_FILE = "weights.npz"
_SPECIALIZED_DIR = "specialized"


class ArtifactError(RuntimeError):
    """A model artifact could not be saved, loaded or understood."""


class ArtifactIntegrityError(ArtifactError):
    """An artifact's bytes do not match its manifest hashes."""


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as stream:
        for chunk in iter(lambda: stream.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _network_state(network) -> Dict[str, np.ndarray]:
    """Flatten a MimeNetwork's deployable state into one ``{name: array}`` map.

    Keys mirror the paper's artefact set: ``backbone.<param>`` for
    ``W_parent`` and ``task.<name>.<param>`` for each child's thresholds and
    head, so the pieces can be restored independently with the existing
    ``state_dict``/``load_state_dict`` machinery.
    """
    state: Dict[str, np.ndarray] = {}
    for key, value in network.backbone.state_dict().items():
        state[f"backbone.{key}"] = value
    for name in network.task_names():
        for key, value in network.registry.get(name).state_dict().items():
            state[f"task.{name}.{key}"] = value
    return state


@dataclass
class ModelArtifact:
    """One servable model version: plans, calibration, weights, manifest.

    ``plan_spec``/``specialized_specs`` are the executable payload —
    :meth:`build_plans` turns them into a dense :class:`EnginePlan` plus the
    per-task specialized dict every serving backend accepts.  ``calibration``
    is the survival profile the specializations were derived from (the
    recalibration loop's drift baseline), and ``weights`` the training-side
    state for offline retraining.  ``metadata`` is free-form provenance
    (model family, source traffic, creation time) surfaced in the manifest.
    """

    name: str
    plan_spec: PlanSpec
    specialized_specs: Dict[str, PlanSpec] = field(default_factory=dict)
    calibration: Optional[CalibrationProfile] = None
    weights: Dict[str, np.ndarray] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------- capture --
    @classmethod
    def from_plans(
        cls,
        name: str,
        plan: EnginePlan,
        specialized: Optional[Dict[str, EnginePlan]] = None,
        calibration: Optional[CalibrationProfile] = None,
        network=None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> "ModelArtifact":
        """Snapshot live plans (and optionally the training network) to a bundle."""
        specs = {
            task: PlanSpec.from_plan(spec) for task, spec in (specialized or {}).items()
        }
        for task in specs:
            if task not in plan.tasks:
                raise ArtifactError(f"specialized plan for unknown task '{task}'")
        return cls(
            name=name,
            plan_spec=PlanSpec.from_plan(plan),
            specialized_specs=specs,
            calibration=calibration,
            weights=_network_state(network) if network is not None else {},
            metadata=dict(metadata) if metadata else {},
        )

    # --------------------------------------------------------------- build --
    def build_plans(self) -> Tuple[EnginePlan, Dict[str, EnginePlan]]:
        """Reconstruct the executable ``(dense plan, specialized dict)`` pair.

        Rebuilt plans have fresh kernel uids and empty workspace pools (the
        :class:`~repro.engine.PlanSpec` contract), and produce bit-identical
        logits to the plans that were captured.
        """
        plan = self.plan_spec.build()
        specialized = {task: spec.build() for task, spec in self.specialized_specs.items()}
        return plan, specialized

    def task_names(self) -> list:
        return list(self.plan_spec.tasks)

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        return tuple(self.plan_spec.input_shape)

    @property
    def dtype(self) -> str:
        return self.plan_spec.dtype

    # ---------------------------------------------------------------- save --
    def save(self, directory: str | Path) -> Path:
        """Write the bundle under ``directory`` (created if missing).

        Payload files land first, the manifest (with their hashes) last —
        a crash mid-save leaves a directory without a consistent manifest,
        which ``load``/``verify`` reject, never a silently-wrong artifact.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        files: Dict[str, Dict[str, object]] = {}

        def _register(relative: str) -> None:
            path = directory / relative
            files[relative] = {"sha256": _sha256(path), "bytes": path.stat().st_size}

        with (directory / _PLAN_FILE).open("wb") as stream:
            pickle.dump(self.plan_spec, stream)
        _register(_PLAN_FILE)
        if self.specialized_specs:
            (directory / _SPECIALIZED_DIR).mkdir(exist_ok=True)
            for task, spec in self.specialized_specs.items():
                relative = f"{_SPECIALIZED_DIR}/{task}.pkl"
                with (directory / relative).open("wb") as stream:
                    pickle.dump(spec, stream)
                _register(relative)
        if self.calibration is not None:
            (directory / _CALIBRATION_FILE).write_text(self.calibration.to_json())
            _register(_CALIBRATION_FILE)
        if self.weights:
            save_state_dict(self.weights, directory / _WEIGHTS_FILE)
            _register(_WEIGHTS_FILE)

        manifest = {
            "schema_version": self.schema_version,
            "name": self.name,
            "tasks": self.task_names(),
            "specialized_tasks": sorted(self.specialized_specs),
            "input_shape": list(self.input_shape),
            "dtype": self.dtype,
            "metadata": self.metadata,
            "files": files,
        }
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2, sort_keys=True))
        return directory

    # ---------------------------------------------------------------- load --
    @staticmethod
    def read_manifest(directory: str | Path) -> Dict[str, object]:
        """Parse and schema-check the manifest without loading payloads."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.is_file():
            raise ArtifactError(f"no {MANIFEST_NAME} under {directory} — not an artifact")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as error:
            raise ArtifactError(f"unreadable manifest in {directory}: {error}") from error
        version = manifest.get("schema_version")
        if not isinstance(version, int) or version < 1 or version > SCHEMA_VERSION:
            raise ArtifactError(
                f"artifact schema version {version!r} unsupported "
                f"(this build reads 1..{SCHEMA_VERSION})"
            )
        return manifest

    @classmethod
    def verify(cls, directory: str | Path) -> Dict[str, object]:
        """Re-hash every payload file against the manifest; return the manifest.

        Raises :class:`ArtifactIntegrityError` on any missing or altered file,
        so a truncated copy or a bit-flipped tensor can never be served.
        """
        directory = Path(directory)
        manifest = cls.read_manifest(directory)
        for relative, entry in manifest.get("files", {}).items():
            path = directory / relative
            if not path.is_file():
                raise ArtifactIntegrityError(f"artifact file missing: {relative}")
            if path.stat().st_size != entry["bytes"] or _sha256(path) != entry["sha256"]:
                raise ArtifactIntegrityError(
                    f"artifact file corrupted (hash mismatch): {relative}"
                )
        return manifest

    @classmethod
    def load(cls, directory: str | Path, verify: bool = True) -> "ModelArtifact":
        """Read a bundle back; ``verify=True`` (default) checks content hashes."""
        directory = Path(directory)
        manifest = cls.verify(directory) if verify else cls.read_manifest(directory)
        with (directory / _PLAN_FILE).open("rb") as stream:
            plan_spec = pickle.load(stream)
        specialized: Dict[str, PlanSpec] = {}
        for task in manifest.get("specialized_tasks", []):
            with (directory / _SPECIALIZED_DIR / f"{task}.pkl").open("rb") as stream:
                specialized[task] = pickle.load(stream)
        calibration = None
        calibration_path = directory / _CALIBRATION_FILE
        if calibration_path.is_file():
            calibration = CalibrationProfile.from_json(calibration_path.read_text())
        weights: Dict[str, np.ndarray] = {}
        weights_path = directory / _WEIGHTS_FILE
        if weights_path.is_file():
            weights = load_state_dict(weights_path)
        return cls(
            name=str(manifest.get("name", directory.name)),
            plan_spec=plan_spec,
            specialized_specs=specialized,
            calibration=calibration,
            weights=weights,
            metadata=dict(manifest.get("metadata", {})),
            schema_version=int(manifest["schema_version"]),
        )
