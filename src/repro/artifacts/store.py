"""A directory of named artifact versions with an atomic ``latest`` pointer.

Layout::

    <root>/
        versions/
            v001/           one ModelArtifact bundle per version
            v002/
            canary/         versions may also carry explicit names
        latest              text file naming the current version

Publishing stages the bundle into a hidden temporary directory and renames it
into place (one ``os.replace`` — atomic on POSIX), then rewrites the
``latest`` pointer the same way, so a reader never observes a half-written
version and ``load("latest")`` always resolves to a complete bundle.
"""

from __future__ import annotations

import os
import re
import shutil
from pathlib import Path
from typing import List, Optional

from repro.artifacts.artifact import ArtifactError, ModelArtifact

__all__ = ["ModelStore"]

_LATEST_FILE = "latest"
_VERSIONS_DIR = "versions"
_AUTO_VERSION = re.compile(r"^v(\d+)$")


class ModelStore:
    """Multiple named :class:`ModelArtifact` versions under one root."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._versions_dir = self.root / _VERSIONS_DIR

    # --------------------------------------------------------------- paths --
    def path(self, version: str) -> Path:
        """Directory of ``version`` (which need not exist yet)."""
        if not version or "/" in version or version.startswith("."):
            raise ArtifactError(f"invalid version name {version!r}")
        return self._versions_dir / version

    def versions(self) -> List[str]:
        """Every published version name, sorted."""
        if not self._versions_dir.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self._versions_dir.iterdir()
            if entry.is_dir() and not entry.name.startswith(".")
        )

    def latest(self) -> Optional[str]:
        """The version the ``latest`` pointer names, or ``None`` when unset."""
        pointer = self.root / _LATEST_FILE
        if not pointer.is_file():
            return None
        name = pointer.read_text().strip()
        return name or None

    def _next_auto_version(self) -> str:
        highest = 0
        for name in self.versions():
            match = _AUTO_VERSION.match(name)
            if match:
                highest = max(highest, int(match.group(1)))
        return f"v{highest + 1:03d}"

    # ------------------------------------------------------------- publish --
    def publish(
        self, artifact: ModelArtifact, version: Optional[str] = None, set_latest: bool = True
    ) -> str:
        """Save ``artifact`` as a new version; returns the version name.

        ``version=None`` auto-numbers (``v001``, ``v002``, ...).  The bundle
        is staged under a dotted temporary name and renamed into place, so
        concurrent readers never see a partial version.
        """
        version = version if version is not None else self._next_auto_version()
        destination = self.path(version)
        if destination.exists():
            raise ArtifactError(f"version '{version}' already exists in {self.root}")
        self._versions_dir.mkdir(parents=True, exist_ok=True)
        staging = self._versions_dir / f".staging-{version}"
        if staging.exists():
            shutil.rmtree(staging)
        try:
            artifact.save(staging)
            os.replace(staging, destination)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        if set_latest:
            self.set_latest(version)
        return version

    def set_latest(self, version: str) -> None:
        """Point ``latest`` at an existing version (atomic rewrite)."""
        if not self.path(version).is_dir():
            raise ArtifactError(f"cannot set latest: version '{version}' does not exist")
        pointer = self.root / _LATEST_FILE
        staging = self.root / f".{_LATEST_FILE}.tmp"
        staging.write_text(version + "\n")
        os.replace(staging, pointer)

    # ---------------------------------------------------------------- load --
    def resolve(self, version: str = "latest") -> Path:
        """Directory of ``version``, following the ``latest`` pointer."""
        if version == "latest":
            name = self.latest()
            if name is None:
                raise ArtifactError(f"store {self.root} has no latest version")
            version = name
        directory = self.path(version)
        if not directory.is_dir():
            raise ArtifactError(f"no version '{version}' in {self.root}")
        return directory

    def load(self, version: str = "latest", verify: bool = True) -> ModelArtifact:
        """Load a published version (``"latest"`` follows the pointer)."""
        return ModelArtifact.load(self.resolve(version), verify=verify)

    def verify(self, version: str = "latest") -> dict:
        """Integrity-check one version; returns its manifest."""
        return ModelArtifact.verify(self.resolve(version))
