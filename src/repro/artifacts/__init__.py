"""Versioned model artifacts: the serving stack's unit of deployment.

Everything the engine needs to serve one model — backbone weights and
per-task thresholds, the measured :class:`~repro.engine.CalibrationProfile`,
the compiled dense :class:`~repro.engine.PlanSpec` and its per-task
specialized variants — travels together as one :class:`ModelArtifact`: an
on-disk bundle with a schema-versioned JSON manifest whose content hashes
make corruption and partial writes detectable (:meth:`ModelArtifact.verify`).

A :class:`ModelStore` keeps many named artifact versions under one root with
an atomically-updated ``latest`` pointer, which is what turns the serving
runtimes' hot-swap control plane (:meth:`repro.serving.BaseRuntime.swap`)
into a zero-downtime deployment story: export a version with ``repro
export``, publish it, and a live runtime swaps to it between micro-batches
without restarting.
"""

from repro.artifacts.artifact import (
    ArtifactError,
    ArtifactIntegrityError,
    MANIFEST_NAME,
    SCHEMA_VERSION,
    ModelArtifact,
)
from repro.artifacts.store import ModelStore

__all__ = [
    "ArtifactError",
    "ArtifactIntegrityError",
    "MANIFEST_NAME",
    "SCHEMA_VERSION",
    "ModelArtifact",
    "ModelStore",
]
