"""Off-chip DRAM storage accounting (Fig. 1 and Fig. 4 of the paper).

Conventional multi-task inference stores one fine-tuned weight set per child
task in addition to (or instead of) the parent's weights.  MIME stores the
parent weights once plus a set of per-task threshold parameters (and a tiny
task head).  With 16-bit parameters the storage in bytes follows directly from
the parameter counts, which this module derives from
:class:`repro.models.shapes.LayerShape` records so the numbers stay consistent
with the hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.models.shapes import LayerShape


@dataclass(frozen=True)
class StorageModel:
    """Assumptions for the storage comparison.

    Attributes
    ----------
    precision_bits:
        Bits per stored parameter (weights, biases and thresholds).  The paper
        uses 16-bit values throughout (Table IV).
    store_parent_conventional:
        Whether the conventional scenario also keeps the parent task's weights
        in DRAM (the paper's Fig. 4 stores the parent task and its child tasks).
    include_task_heads:
        Whether MIME's per-task classification heads are counted in its storage
        (they are tiny but we account for them for fairness).
    threshold_layers:
        Which layers carry thresholds: ``"all"`` (conv + hidden FC, default) or
        ``"conv"`` (convolutions only).
    """

    precision_bits: int = 16
    store_parent_conventional: bool = True
    include_task_heads: bool = True
    threshold_layers: str = "all"

    def __post_init__(self) -> None:
        if self.precision_bits <= 0:
            raise ValueError("precision_bits must be positive")
        if self.threshold_layers not in ("all", "conv"):
            raise ValueError("threshold_layers must be 'all' or 'conv'")

    @property
    def bytes_per_param(self) -> float:
        return self.precision_bits / 8.0


@dataclass
class StorageBreakdown:
    """Parameter counts and byte totals for one storage scenario."""

    scenario: str
    parent_params: int = 0
    per_task_params: Dict[str, int] = field(default_factory=dict)
    bytes_per_param: float = 2.0

    @property
    def total_params(self) -> int:
        return self.parent_params + sum(self.per_task_params.values())

    @property
    def total_bytes(self) -> float:
        return self.total_params * self.bytes_per_param

    @property
    def total_megabytes(self) -> float:
        return self.total_bytes / (1024.0 * 1024.0)


# ---------------------------------------------------------------------------
# Parameter counting from layer shapes
# ---------------------------------------------------------------------------
def count_weight_parameters(shapes: Sequence[LayerShape], include_bias: bool = True) -> int:
    """Weights (and optionally biases) of a full model described by ``shapes``."""
    total = 0
    for shape in shapes:
        total += shape.weight_count
        if include_bias:
            total += shape.bias_count
    return total


def count_threshold_parameters(
    shapes: Sequence[LayerShape], threshold_layers: str = "all"
) -> int:
    """Threshold parameters stored per child task for a model described by ``shapes``.

    One threshold per output neuron of every thresholded layer; the final
    classification layer is never thresholded (its outputs are the logits).
    """
    if threshold_layers not in ("all", "conv"):
        raise ValueError("threshold_layers must be 'all' or 'conv'")
    if not shapes:
        return 0
    total = 0
    for shape in shapes[:-1]:  # the last layer is the classifier output
        if threshold_layers == "conv" and shape.kind != "conv":
            continue
        total += shape.output_neurons
    return total


def head_parameters(shapes: Sequence[LayerShape]) -> int:
    """Parameters of the final classification layer (per-task head in MIME)."""
    if not shapes:
        return 0
    final = shapes[-1]
    return final.weight_count + final.bias_count


# ---------------------------------------------------------------------------
# Scenario builders
# ---------------------------------------------------------------------------
def conventional_storage(
    parent_shapes: Sequence[LayerShape],
    child_shapes: Dict[str, Sequence[LayerShape]],
    model: StorageModel | None = None,
) -> StorageBreakdown:
    """DRAM storage of conventional multi-task inference.

    Every child task keeps its own complete fine-tuned weight set; the parent's
    weights are additionally stored when ``model.store_parent_conventional``.
    """
    model = model or StorageModel()
    breakdown = StorageBreakdown("conventional", bytes_per_param=model.bytes_per_param)
    if model.store_parent_conventional:
        breakdown.parent_params = count_weight_parameters(parent_shapes)
    for task, shapes in child_shapes.items():
        breakdown.per_task_params[task] = count_weight_parameters(shapes)
    return breakdown


def mime_storage(
    parent_shapes: Sequence[LayerShape],
    child_shapes: Dict[str, Sequence[LayerShape]],
    model: StorageModel | None = None,
) -> StorageBreakdown:
    """DRAM storage of MIME: shared parent weights + per-task thresholds (+ heads)."""
    model = model or StorageModel()
    breakdown = StorageBreakdown("mime", bytes_per_param=model.bytes_per_param)
    breakdown.parent_params = count_weight_parameters(parent_shapes)
    for task, shapes in child_shapes.items():
        per_task = count_threshold_parameters(shapes, model.threshold_layers)
        if model.include_task_heads:
            per_task += head_parameters(shapes)
        breakdown.per_task_params[task] = per_task
    return breakdown


def storage_saving_ratio(
    conventional: StorageBreakdown, mime: StorageBreakdown
) -> float:
    """The memory-efficiency factor reported in Fig. 4 (~3.48x for 3 child tasks)."""
    if mime.total_bytes <= 0:
        raise ValueError("MIME storage must be positive")
    return conventional.total_bytes / mime.total_bytes


def storage_vs_num_tasks(
    parent_shapes: Sequence[LayerShape],
    child_shapes_template: Sequence[LayerShape],
    max_tasks: int,
    model: StorageModel | None = None,
) -> Dict[str, List[float]]:
    """Storage (in MB) as a function of the number of child tasks (Fig. 1 / Fig. 4).

    Child tasks are assumed architecturally identical to ``child_shapes_template``
    (the paper's children all reuse the VGG16 topology).  Returns the number of
    tasks, both storage curves and the per-point saving ratio.
    """
    if max_tasks <= 0:
        raise ValueError("max_tasks must be positive")
    model = model or StorageModel()
    num_tasks: List[float] = []
    conventional_mb: List[float] = []
    mime_mb: List[float] = []
    ratios: List[float] = []
    for n in range(1, max_tasks + 1):
        children = {f"child{i}": child_shapes_template for i in range(n)}
        conv = conventional_storage(parent_shapes, children, model)
        mime = mime_storage(parent_shapes, children, model)
        num_tasks.append(float(n))
        conventional_mb.append(conv.total_megabytes)
        mime_mb.append(mime.total_megabytes)
        ratios.append(storage_saving_ratio(conv, mime))
    return {
        "num_tasks": num_tasks,
        "conventional_mb": conventional_mb,
        "mime_mb": mime_mb,
        "saving_ratio": ratios,
    }
