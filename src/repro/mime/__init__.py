"""MIME core: task-specific threshold masks on a frozen parent backbone.

This package implements the paper's contribution:

* :class:`repro.mime.threshold_layer.ThresholdMask` — the per-neuron threshold
  comparison producing a binary mask (Eq. 1-2) with a piece-wise-linear
  surrogate gradient for training.
* :class:`repro.mime.masked_model.MimeNetwork` — a frozen parent backbone with
  one set of thresholds (and a small classification head) per child task.
* :class:`repro.mime.trainer.ThresholdTrainer` — trains the thresholds with
  ``L = L_CE + beta * sum(exp(t))`` (Eq. 3-4).
* :mod:`repro.mime.sparsity` — layerwise dynamic neuronal sparsity measurement.
* :mod:`repro.mime.storage` — DRAM storage accounting (Fig. 1 / Fig. 4).
"""

from repro.mime.threshold_layer import ThresholdMask
from repro.mime.masked_model import MimeNetwork, add_structured_sparsity_task
from repro.mime.trainer import ThresholdTrainer, TrainingHistory
from repro.mime.regularization import ThresholdRegularizer
from repro.mime.task_manager import TaskRegistry, TaskParameters
from repro.mime.sparsity import (
    measure_channel_survival,
    measure_mime_sparsity,
    measure_relu_sparsity,
    average_sparsity_over_loader,
    SparsityReport,
)
from repro.mime.storage import (
    StorageModel,
    StorageBreakdown,
    conventional_storage,
    mime_storage,
    storage_saving_ratio,
    storage_vs_num_tasks,
)

__all__ = [
    "ThresholdMask",
    "MimeNetwork",
    "add_structured_sparsity_task",
    "ThresholdTrainer",
    "TrainingHistory",
    "ThresholdRegularizer",
    "TaskRegistry",
    "TaskParameters",
    "measure_channel_survival",
    "measure_mime_sparsity",
    "measure_relu_sparsity",
    "average_sparsity_over_loader",
    "SparsityReport",
    "StorageModel",
    "StorageBreakdown",
    "conventional_storage",
    "mime_storage",
    "storage_saving_ratio",
    "storage_vs_num_tasks",
]
