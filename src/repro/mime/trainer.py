"""Threshold training (Section III-A of the paper).

For each child task the trainer freezes ``W_parent`` (already enforced by
:class:`repro.mime.masked_model.MimeNetwork`), and optimises only that task's
threshold tensors and classification head with

``L = L_CE + beta * sum_layers sum_i exp(t_i)``

using Adam — the paper trains for 10 epochs with a learning rate of 1e-3 and
``beta = 1e-6``, which are the defaults here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.nn import Adam, CrossEntropyLoss, SGD, accuracy
from repro.datasets.base import DataLoader
from repro.mime.masked_model import MimeNetwork
from repro.mime.regularization import ThresholdRegularizer
from repro.utils.logging import get_logger

_LOGGER = get_logger("mime.trainer")


@dataclass
class TrainingHistory:
    """Per-epoch training curves for one child task."""

    task: str
    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)
    regularization: List[float] = field(default_factory=list)
    mean_sparsity: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    def final_train_accuracy(self) -> float:
        if not self.train_accuracy:
            raise RuntimeError("no epochs have been recorded")
        return self.train_accuracy[-1]

    def final_val_accuracy(self) -> float:
        if not self.val_accuracy:
            raise RuntimeError("no validation epochs have been recorded")
        return self.val_accuracy[-1]


class ThresholdTrainer:
    """Trains MIME threshold parameters (and task heads) on child tasks.

    Parameters
    ----------
    model:
        The multi-task :class:`MimeNetwork`.
    lr:
        Learning rate (paper: 1e-3).
    beta:
        Threshold-regularisation strength (paper: 1e-6).
    optimizer:
        ``"adam"`` (paper default) or ``"sgd"``.
    """

    def __init__(
        self,
        model: MimeNetwork,
        lr: float = 1e-3,
        beta: float = 1e-6,
        optimizer: str = "adam",
    ) -> None:
        if optimizer not in ("adam", "sgd"):
            raise ValueError("optimizer must be 'adam' or 'sgd'")
        self.model = model
        self.lr = lr
        self.optimizer_name = optimizer
        self.regularizer = ThresholdRegularizer(beta)
        self.criterion = CrossEntropyLoss()

    # ------------------------------------------------------------------ public --
    def train_task(
        self,
        task: str,
        train_loader: DataLoader | Iterable[Tuple[np.ndarray, np.ndarray]],
        epochs: int = 10,
        val_loader: DataLoader | Iterable[Tuple[np.ndarray, np.ndarray]] | None = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train thresholds/head for ``task`` and return the training history."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.model.set_active_task(task)
        parameters = self.model.trainable_parameters(task)
        if self.optimizer_name == "adam":
            optimizer = Adam(parameters, lr=self.lr)
        else:
            optimizer = SGD(parameters, lr=self.lr, momentum=0.9)

        history = TrainingHistory(task=task)
        for epoch in range(epochs):
            epoch_loss, epoch_accuracy, epoch_reg, epoch_sparsity = self._run_epoch(
                train_loader, optimizer
            )
            history.train_loss.append(epoch_loss)
            history.train_accuracy.append(epoch_accuracy)
            history.regularization.append(epoch_reg)
            history.mean_sparsity.append(epoch_sparsity)
            if val_loader is not None:
                _, val_acc = self.evaluate(task, val_loader)
                history.val_accuracy.append(val_acc)
            if verbose:
                _LOGGER.info(
                    "task=%s epoch=%d loss=%.4f acc=%.3f sparsity=%.3f",
                    task,
                    epoch + 1,
                    epoch_loss,
                    epoch_accuracy,
                    epoch_sparsity,
                )
        return history

    def train_all(
        self,
        loaders: Dict[str, DataLoader],
        epochs: int = 10,
        val_loaders: Dict[str, DataLoader] | None = None,
        verbose: bool = False,
    ) -> Dict[str, TrainingHistory]:
        """Train every registered task that has a loader, in registration order."""
        histories: Dict[str, TrainingHistory] = {}
        for task in self.model.task_names():
            if task not in loaders:
                continue
            val_loader = val_loaders.get(task) if val_loaders else None
            histories[task] = self.train_task(
                task, loaders[task], epochs=epochs, val_loader=val_loader, verbose=verbose
            )
        return histories

    def evaluate(
        self,
        task: str,
        loader: DataLoader | Iterable[Tuple[np.ndarray, np.ndarray]],
    ) -> Tuple[float, float]:
        """Return ``(mean CE loss, accuracy)`` of ``task`` over ``loader``."""
        self.model.set_active_task(task)
        self.model.eval()
        total_loss = 0.0
        total_correct = 0.0
        total = 0
        for images, labels in loader:
            logits = self.model.forward(images)
            total_loss += self.criterion(logits, labels) * images.shape[0]
            total_correct += accuracy(logits, labels) * images.shape[0]
            total += images.shape[0]
        if total == 0:
            raise ValueError("the evaluation loader yielded no batches")
        return total_loss / total, total_correct / total

    # ----------------------------------------------------------------- private --
    def _run_epoch(self, loader, optimizer) -> Tuple[float, float, float, float]:
        self.model.train()
        masks = self.model.masks()
        total_loss = 0.0
        total_correct = 0.0
        total_reg = 0.0
        total_sparsity = 0.0
        total = 0
        num_batches = 0
        for images, labels in loader:
            optimizer.zero_grad()
            logits = self.model.forward(images)
            ce_loss = self.criterion(logits, labels)
            reg_value = self.regularizer.value(masks)
            loss = ce_loss + self.regularizer.beta * reg_value

            grad_logits = self.criterion.backward()
            self.model.backward(grad_logits)
            self.regularizer.accumulate_gradients(masks)
            optimizer.step()

            batch = images.shape[0]
            total_loss += loss * batch
            total_correct += accuracy(logits, labels) * batch
            total_reg += reg_value
            total_sparsity += float(np.mean([mask.last_sparsity() for mask in masks]))
            total += batch
            num_batches += 1
        if total == 0:
            raise ValueError("the training loader yielded no batches")
        return (
            total_loss / total,
            total_correct / total,
            total_reg / num_batches,
            total_sparsity / num_batches,
        )
