"""The MIME threshold-mask layer.

Implements equations (1) and (2) of the paper: each output neuron *i* of a
layer owns a threshold ``t_i > 0``; the MAC output ``y_i`` is compared against
it to form a binary mask ``m_i = 1[y_i - t_i >= 0]`` and the activation is
``a_i = y_i * m_i``.  During training the step function's derivative is
replaced by a piece-wise-linear surrogate (Fig. 3a of the paper, following
Dynamic Sparse Training), so gradients flow both to the thresholds and to
upstream layers through the masked path.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn import functional as F


class ThresholdMask(Module):
    """Per-neuron threshold comparison and masking.

    Parameters
    ----------
    neuron_shape:
        Shape of one sample's pre-activation at this point of the network,
        e.g. ``(C, H, W)`` after a convolution or ``(features,)`` after a
        fully-connected layer.  One threshold is learned per entry.
    init_threshold:
        Initial threshold value.  The paper requires ``t_i > 0``; a small
        positive constant starts training close to (but not identical to) the
        behaviour of a linear layer with mild pruning.
    surrogate_width:
        Half-width of the piece-wise-linear surrogate gradient window.
    name:
        Optional label (usually the backbone layer it masks, e.g. ``conv5``).
    """

    def __init__(
        self,
        neuron_shape: Tuple[int, ...],
        init_threshold: float = 0.05,
        surrogate_width: float = 1.0,
        name: str = "",
    ) -> None:
        super().__init__()
        if any(dim <= 0 for dim in neuron_shape):
            raise ValueError(f"invalid neuron shape {neuron_shape}")
        if init_threshold <= 0:
            raise ValueError("the paper requires strictly positive thresholds")
        if surrogate_width <= 0:
            raise ValueError("surrogate_width must be positive")
        self.neuron_shape = tuple(int(d) for d in neuron_shape)
        self.surrogate_width = surrogate_width
        self.layer_name = name

        self.thresholds = Parameter(np.full(self.neuron_shape, float(init_threshold)))

        self._pre_activation: np.ndarray | None = None
        self._mask: np.ndarray | None = None

    # -- forward / backward -------------------------------------------------------
    def forward(self, pre_activation: np.ndarray) -> np.ndarray:
        if pre_activation.shape[1:] != self.neuron_shape:
            raise ValueError(
                f"pre-activation shape {pre_activation.shape[1:]} does not match the "
                f"threshold shape {self.neuron_shape}"
            )
        thresholds = self.thresholds.data[None, ...]
        mask = F.threshold_mask(pre_activation, thresholds)
        self._pre_activation = pre_activation
        self._mask = mask
        return pre_activation * mask

    def infer(self, pre_activation: np.ndarray) -> np.ndarray:
        """Stateless masking: no cached pre-activation/mask for backward.

        Thresholds are compared in the input's dtype so a float32 activation
        stream is not upcast by the (float64) parameter tensor.
        """
        if pre_activation.shape[1:] != self.neuron_shape:
            raise ValueError(
                f"pre-activation shape {pre_activation.shape[1:]} does not match the "
                f"threshold shape {self.neuron_shape}"
            )
        thresholds = self.thresholds.data.astype(pre_activation.dtype, copy=False)
        return pre_activation * F.threshold_mask(pre_activation, thresholds[None, ...])

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._pre_activation is None or self._mask is None:
            raise RuntimeError("backward called before forward")
        y = self._pre_activation
        mask = self._mask
        diff = y - self.thresholds.data[None, ...]
        surrogate = F.piecewise_linear_ste(diff, self.surrogate_width)

        # a = y * step(y - t)
        # da/dy = step(y - t) + y * step'(y - t)
        # da/dt = -y * step'(y - t)
        grad_input = grad_output * (mask + y * surrogate)
        grad_thresholds = -(grad_output * y * surrogate).sum(axis=0)
        self.thresholds.accumulate_grad(grad_thresholds)
        return grad_input

    # -- introspection -------------------------------------------------------------
    def last_mask(self) -> np.ndarray:
        """Binary mask produced by the most recent forward pass."""
        if self._mask is None:
            raise RuntimeError("no forward pass has been run yet")
        return self._mask

    def last_sparsity(self) -> float:
        """Fraction of neurons pruned (mask == 0) in the most recent forward pass."""
        if self._mask is None:
            raise RuntimeError("no forward pass has been run yet")
        return float(1.0 - self._mask.mean())

    def num_thresholds(self) -> int:
        """Number of threshold parameters (= number of output neurons masked)."""
        return int(np.prod(self.neuron_shape))

    def regularization_value(self) -> float:
        """The layer's contribution to ``L_t = sum_i exp(t_i)`` (Eq. 4)."""
        return float(np.exp(self.thresholds.data).sum())

    def accumulate_regularization_grad(self, beta: float) -> None:
        """Add ``beta * d/dt sum(exp(t)) = beta * exp(t)`` to the threshold gradient."""
        if beta < 0:
            raise ValueError("beta must be non-negative")
        if beta == 0.0:
            return
        self.thresholds.accumulate_grad(beta * np.exp(self.thresholds.data))
