"""The MIME multi-task network: a frozen parent backbone with per-task thresholds.

Construction takes a trained VGG backbone, freezes every backbone parameter
(``W_parent``), and replaces each post-convolution (and, optionally,
post-hidden-FC) ReLU with a :class:`repro.mime.threshold_layer.ThresholdMask`.
For every registered child task the network stores

* one threshold tensor per masked layer (``T_child``), and
* a small task-specific classification head (the paper's child tasks have
  different class counts, so some output layer must be task-owned; its size is
  accounted for in the storage model and is negligible next to ``W_parent``).

Switching the *active task* rebinds the mask thresholds and the head
parameters; the backbone weights are shared by construction, which is exactly
the property the pipelined-mode hardware analysis exploits.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.nn import BatchNorm1d, BatchNorm2d, Conv2d, Dropout, Linear, ReLU
from repro.nn.module import Module, Parameter
from repro.nn import init as nn_init
from repro.models.vgg import VGG
from repro.mime.threshold_layer import ThresholdMask
from repro.mime.task_manager import TaskParameters, TaskRegistry
from repro.utils.rng import new_rng


def add_structured_sparsity_task(
    network: "MimeNetwork",
    name: str,
    num_classes: int,
    rng: np.random.Generator,
    dead_fraction: float = 0.5,
    threshold_jitter: float = 0.0,
    dead_threshold: float = 1e9,
) -> TaskParameters:
    """Register a task whose thresholds structurally kill random channels.

    Models the paper's per-task structured sparsity for synthetic workloads
    (CLI benchmarks, examples, tests): thresholds optionally get a uniform
    ``[0, threshold_jitter)`` per-neuron spread so tasks produce distinct
    dynamic sparsity, then a ``dead_fraction`` subset of each masked layer's
    *channels* (drawn per task, so tasks kill different subsets) is set to
    ``dead_threshold`` — a value no pre-activation can reach, so the channel
    never fires for this task on any input and a calibrated specialized plan
    may eliminate it outright.
    """
    if not 0.0 <= dead_fraction < 1.0:
        raise ValueError("dead_fraction must lie in [0, 1)")
    task = network.add_task(name, num_classes, rng=rng)
    for param in task.thresholds:
        if threshold_jitter > 0.0:
            param.data += rng.uniform(0.0, threshold_jitter, size=param.data.shape)
        if dead_fraction > 0.0:
            dead = rng.random(param.data.shape[0]) < dead_fraction
            param.data[dead] = dead_threshold
    return task


class MimeNetwork(Module):
    """Multi-task inference network built around frozen parent weights.

    Parameters
    ----------
    backbone:
        A (typically parent-task-trained) :class:`repro.models.vgg.VGG`.  Its
        parameters are frozen in place.
    init_threshold:
        Initial value of every threshold parameter (must be positive).
    surrogate_width:
        Width of the piece-wise-linear surrogate gradient of the masks.
    mask_classifier_hidden:
        Also mask the hidden fully-connected layers of the classifier (the
        paper thresholds every neuron, including the FC layers it labels
        conv14/conv15).
    """

    def __init__(
        self,
        backbone: VGG,
        init_threshold: float = 0.05,
        surrogate_width: float = 1.0,
        mask_classifier_hidden: bool = True,
    ) -> None:
        super().__init__()
        if not isinstance(backbone, VGG):
            raise TypeError("MimeNetwork expects a repro.models.vgg.VGG backbone")
        self.backbone = backbone
        self.backbone.freeze()
        self.init_threshold = init_threshold
        self.surrogate_width = surrogate_width
        self.mask_classifier_hidden = mask_classifier_hidden

        self._feature_layers: List[Module] = []
        self._classifier_layers: List[Module] = []
        self._masks: List[ThresholdMask] = []
        self._head_in_features: int = 0
        self._feature_shape: Tuple[int, ...] = ()
        self._build_masked_pipeline()

        # The head is a shared Linear whose parameters are re-bound per task.
        self.head = Linear(self._head_in_features, 1)
        self.registry = TaskRegistry()
        self._rng = new_rng()

    # ------------------------------------------------------------------ build --
    def _build_masked_pipeline(self) -> None:
        """Copy the backbone layer sequence, swapping ReLUs for threshold masks."""
        in_shape: Tuple[int, ...] = (
            self.backbone.in_channels,
            self.backbone.input_size,
            self.backbone.input_size,
        )
        current = in_shape
        conv_index = 0

        for layer in self.backbone.features:
            if isinstance(layer, ReLU):
                conv_name = f"conv{conv_index}"
                mask = ThresholdMask(
                    current,
                    init_threshold=self.init_threshold,
                    surrogate_width=self.surrogate_width,
                    name=conv_name,
                )
                self._feature_layers.append(mask)
                self._masks.append(mask)
                setattr(self, f"mask_{conv_name}", mask)
                continue
            if isinstance(layer, Conv2d):
                conv_index += 1
            self._feature_layers.append(layer)
            if hasattr(layer, "output_shape"):
                current = tuple(layer.output_shape(current))

        layer_index = conv_index
        flat = int(np.prod(current))
        current = (flat,)
        classifier_modules = list(self.backbone.classifier)
        if not classifier_modules or not isinstance(classifier_modules[-1], Linear):
            raise ValueError("the backbone classifier must end in a Linear layer")
        trunk, final = classifier_modules[:-1], classifier_modules[-1]

        for layer in trunk:
            if isinstance(layer, ReLU):
                if self.mask_classifier_hidden:
                    fc_name = f"fc{layer_index}"
                    mask = ThresholdMask(
                        current,
                        init_threshold=self.init_threshold,
                        surrogate_width=self.surrogate_width,
                        name=fc_name,
                    )
                    self._classifier_layers.append(mask)
                    self._masks.append(mask)
                    setattr(self, f"mask_{fc_name}", mask)
                else:
                    self._classifier_layers.append(layer)
                continue
            if isinstance(layer, Linear):
                layer_index += 1
            self._classifier_layers.append(layer)
            if hasattr(layer, "output_shape"):
                current = tuple(layer.output_shape(current))

        self._head_in_features = final.in_features
        self._feature_shape = self._walk_feature_shape()

    # ------------------------------------------------------------- task admin --
    def add_task(
        self,
        name: str,
        num_classes: int,
        rng: np.random.Generator | None = None,
    ) -> TaskParameters:
        """Register a child task: allocate its thresholds and classification head."""
        if num_classes <= 0:
            raise ValueError("num_classes must be positive")
        rng = rng if rng is not None else self._rng
        thresholds = [
            Parameter(np.full(mask.neuron_shape, float(self.init_threshold)))
            for mask in self._masks
        ]
        head_weight = Parameter(
            nn_init.kaiming_uniform(
                (num_classes, self._head_in_features), fan_in=self._head_in_features, rng=rng
            )
        )
        bound = 1.0 / np.sqrt(self._head_in_features)
        head_bias = Parameter(nn_init.uniform((num_classes,), -bound, bound, rng=rng))
        task = TaskParameters(
            name=name,
            num_classes=num_classes,
            thresholds=thresholds,
            head_weight=head_weight,
            head_bias=head_bias,
        )
        self.registry.register(task)
        if len(self.registry) == 1:
            self.set_active_task(name)
        return task

    def set_active_task(self, name: str) -> TaskParameters:
        """Make ``name`` the task whose thresholds/head the forward pass uses."""
        task = self.registry.set_active(name)
        for mask, thresholds in zip(self._masks, task.thresholds):
            mask.thresholds = thresholds
        self.head.weight = task.head_weight
        self.head.bias = task.head_bias
        self.head.out_features = task.num_classes
        return task

    @property
    def active_task(self) -> str:
        return self.registry.active_name

    def task_names(self) -> List[str]:
        return self.registry.names()

    # ---------------------------------------------------------------- forward --
    def forward(self, x: np.ndarray, task: str | None = None) -> np.ndarray:
        if task is not None and task != self.registry.active_name:
            self.set_active_task(task)
        if len(self.registry) == 0:
            raise RuntimeError("no task registered; call add_task() first")
        for layer in self._feature_layers:
            x = layer(x)
        x = x.reshape(x.shape[0], -1)
        for layer in self._classifier_layers:
            x = layer(x)
        return self.head(x)

    def infer(self, x: np.ndarray, task: str | None = None) -> np.ndarray:
        """Inference fast path: stateless layer traversal, no backward caches.

        Unlike ``forward`` this leaves every layer's training-time caches (and
        hence ``sparsity_by_layer``) untouched.  The computation runs in the
        input's dtype, so feeding float32 images keeps the whole pass float32.
        """
        if task is not None and task != self.registry.active_name:
            self.set_active_task(task)
        if len(self.registry) == 0:
            raise RuntimeError("no task registered; call add_task() first")
        for layer in self._feature_layers:
            x = layer.infer(x)
        x = x.reshape(x.shape[0], -1)
        for layer in self._classifier_layers:
            x = layer.infer(x)
        return self.head.infer(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.head.backward(grad_output)
        for layer in reversed(self._classifier_layers):
            grad = layer.backward(grad)
        # Undo the flatten between features and classifier.
        grad = grad.reshape((grad.shape[0],) + self._feature_shape)
        for layer in reversed(self._feature_layers):
            grad = layer.backward(grad)
        return grad

    def _walk_feature_shape(self) -> Tuple[int, ...]:
        shape: Tuple[int, ...] = (
            self.backbone.in_channels,
            self.backbone.input_size,
            self.backbone.input_size,
        )
        for layer in self._feature_layers:
            if hasattr(layer, "output_shape"):
                shape = tuple(layer.output_shape(shape))
        return shape

    def _feature_output_shape(self) -> Tuple[int, ...]:
        """Per-sample shape at the feature/classifier boundary (cached at build)."""
        return self._feature_shape

    # ------------------------------------------------------------- train mode --
    def train(self, mode: bool = True) -> "MimeNetwork":
        """Switch training mode while keeping the frozen backbone in eval mode.

        The parent's BatchNorm running statistics are part of ``W_parent`` and
        must not drift while child-task thresholds are trained, so backbone
        normalisation and dropout layers stay in inference mode.
        """
        super().train(mode)
        for layer in self._feature_layers + self._classifier_layers:
            if isinstance(layer, (BatchNorm1d, BatchNorm2d, Dropout)):
                layer.train(False)
        self.backbone.train(False)
        return self

    # ------------------------------------------------------------ introspection --
    def masks(self) -> List[ThresholdMask]:
        """The threshold masks in network order."""
        return list(self._masks)

    def masked_layer_names(self) -> List[str]:
        """Names of the masked layers (``conv1`` ... ``fcK``), in network order."""
        return [mask.layer_name for mask in self._masks]

    def sparsity_by_layer(self) -> Dict[str, float]:
        """Per-layer dynamic sparsity observed in the most recent forward pass."""
        return {mask.layer_name: mask.last_sparsity() for mask in self._masks}

    def threshold_counts(self) -> Dict[str, int]:
        """Number of threshold parameters per masked layer."""
        return {mask.layer_name: mask.num_thresholds() for mask in self._masks}

    def num_threshold_parameters(self) -> int:
        """Total threshold parameters stored per child task."""
        return sum(mask.num_thresholds() for mask in self._masks)

    def trainable_parameters(self, task: str | None = None) -> List[Parameter]:
        """Parameters to optimise for ``task`` (default: the active task)."""
        record = self.registry.get(task) if task is not None else self.registry.active
        return record.trainable_parameters()

    def parent_parameter_count(self) -> int:
        """Number of shared (frozen) backbone parameters — the size of W_parent."""
        return self.backbone.num_parameters()
