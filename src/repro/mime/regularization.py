"""Threshold regularisation (Eq. 3-4 of the paper).

The training loss is ``L = L_CE + beta * L_t`` with
``L_t = sum_layers sum_i exp(t_i)``.  The exponential penalty keeps thresholds
from drifting to arbitrarily large positive values (which would prune every
neuron and stall training) while leaving small thresholds essentially free.
"""

from __future__ import annotations

from typing import Iterable

from repro.mime.threshold_layer import ThresholdMask


class ThresholdRegularizer:
    """Computes ``L_t`` and injects its gradient into threshold parameters.

    Parameters
    ----------
    beta:
        Regularisation strength.  The paper uses ``1e-6`` with batch size 100;
        the default follows the paper.
    """

    def __init__(self, beta: float = 1e-6) -> None:
        if beta < 0:
            raise ValueError("beta must be non-negative")
        self.beta = beta

    def value(self, masks: Iterable[ThresholdMask]) -> float:
        """The raw regularisation term ``L_t`` (not yet scaled by beta)."""
        return float(sum(mask.regularization_value() for mask in masks))

    def penalty(self, masks: Iterable[ThresholdMask]) -> float:
        """The scaled penalty ``beta * L_t`` added to the loss."""
        return self.beta * self.value(masks)

    def accumulate_gradients(self, masks: Iterable[ThresholdMask]) -> None:
        """Add ``beta * exp(t)`` to every mask's threshold gradient buffer."""
        for mask in masks:
            mask.accumulate_regularization_grad(self.beta)
