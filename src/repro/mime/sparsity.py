"""Layerwise neuronal-sparsity measurement.

Tables II and III of the paper report, per convolutional layer, the average
fraction of zero output activations:

* for MIME the zeros come from the threshold masks (dynamic neuronal pruning);
* for the conventional baselines they come from ReLU zeroing negative MAC
  outputs.

Both are measured the same way here: run batches through the model and average
each layer's zero fraction over all evaluated inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.nn import Conv2d, ReLU
from repro.models.vgg import VGG
from repro.mime.masked_model import MimeNetwork


@dataclass
class SparsityReport:
    """Average layerwise sparsity plus summary statistics.

    Attributes
    ----------
    per_layer:
        Mapping from layer name (``conv1`` ...) to mean sparsity in [0, 1].
    num_samples:
        Number of images the averages were computed over.
    """

    per_layer: Dict[str, float] = field(default_factory=dict)
    num_samples: int = 0

    @property
    def mean(self) -> float:
        """Mean sparsity across layers (0 when no layers were recorded)."""
        if not self.per_layer:
            return 0.0
        return float(np.mean(list(self.per_layer.values())))

    def layer_names(self) -> List[str]:
        return list(self.per_layer)

    def as_vector(self, layer_names: Iterable[str] | None = None) -> np.ndarray:
        """Sparsities as an array ordered by ``layer_names`` (or insertion order)."""
        names = list(layer_names) if layer_names is not None else self.layer_names()
        return np.array([self.per_layer[name] for name in names])


def measure_mime_sparsity(model: MimeNetwork, images: np.ndarray, task: str | None = None) -> Dict[str, float]:
    """Sparsity of every threshold mask for a single batch of ``images``."""
    model.eval()
    model.forward(images, task=task)
    return model.sparsity_by_layer()


def measure_channel_survival(
    model: MimeNetwork, images: np.ndarray, task: str | None = None
) -> Dict[str, np.ndarray]:
    """Per-channel survival rates of every threshold mask for one batch.

    For a convolutional mask the rate of channel ``c`` is the fraction of
    ``(image, position)`` slots in which the channel survived its threshold;
    for a fully-connected mask it is the per-feature survival over the batch.
    This is the training-side counterpart of the inference engine's
    calibration pass (:func:`repro.engine.calibrate.calibrate_plan`): a
    channel with rate 0.0 never fired for ``task`` and is a candidate for
    dead-channel elimination when the plan is specialized.
    """
    model.eval()
    model.forward(images, task=task)
    survival: Dict[str, np.ndarray] = {}
    for mask_layer in model.masks():
        mask = mask_layer.last_mask()
        if mask.ndim == 4:  # (N, C, H, W) convolutional mask
            survival[mask_layer.layer_name] = mask.mean(axis=(0, 2, 3))
        else:  # (N, F) fully-connected mask
            survival[mask_layer.layer_name] = mask.mean(axis=0)
    return survival


def measure_relu_sparsity(model: VGG, images: np.ndarray) -> Dict[str, float]:
    """Sparsity of the post-convolution ReLUs of a conventional VGG for one batch.

    Only feature-extractor ReLUs (those that follow a convolution) are reported,
    labelled ``conv1`` ... ``convN`` in network order to match Table III.
    """
    model.eval()
    model.forward(images)
    sparsities: Dict[str, float] = {}
    conv_index = 0
    for layer in model.features:
        if isinstance(layer, Conv2d):
            conv_index += 1
        elif isinstance(layer, ReLU):
            sparsities[f"conv{conv_index}"] = layer.last_sparsity()
    return sparsities


def _accumulate(
    totals: Dict[str, float], counts: Dict[str, int], batch_sparsity: Dict[str, float], batch_size: int
) -> None:
    for name, value in batch_sparsity.items():
        totals[name] = totals.get(name, 0.0) + value * batch_size
        counts[name] = counts.get(name, 0) + batch_size


def average_sparsity_over_loader(
    model,
    batches: Iterable[Tuple[np.ndarray, np.ndarray]],
    task: str | None = None,
    max_batches: int | None = None,
) -> SparsityReport:
    """Average layerwise sparsity of ``model`` over an iterable of ``(images, labels)``.

    Works for both :class:`MimeNetwork` (threshold masks) and plain
    :class:`repro.models.vgg.VGG` baselines (ReLU sparsity).
    """
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    seen = 0
    for batch_index, (images, _) in enumerate(batches):
        if max_batches is not None and batch_index >= max_batches:
            break
        if isinstance(model, MimeNetwork):
            batch_sparsity = measure_mime_sparsity(model, images, task=task)
        else:
            batch_sparsity = measure_relu_sparsity(model, images)
        _accumulate(totals, counts, batch_sparsity, images.shape[0])
        seen += images.shape[0]
    per_layer = {name: totals[name] / counts[name] for name in totals}
    return SparsityReport(per_layer=per_layer, num_samples=seen)
