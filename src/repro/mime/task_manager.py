"""Per-task parameter bookkeeping for MIME.

A :class:`MimeNetwork` owns exactly one set of frozen backbone weights
(``W_parent``) and, for every registered child task, a
:class:`TaskParameters` record holding that task's threshold tensors and its
(small) classification head.  The :class:`TaskRegistry` stores these records,
switches the active task, and serialises them so the artefacts the paper says
must live in DRAM — ``{W_parent, T_child-1, ..., T_child-n}`` — can be
checkpointed and re-loaded independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

import numpy as np

from repro.nn.module import Parameter


@dataclass
class TaskParameters:
    """Everything MIME stores for one child task.

    Attributes
    ----------
    name:
        Task name.
    num_classes:
        Number of classes of the task head.
    thresholds:
        One :class:`Parameter` per masked layer, in network order.
    head_weight, head_bias:
        Parameters of the task-specific output layer.
    """

    name: str
    num_classes: int
    thresholds: List[Parameter] = field(default_factory=list)
    head_weight: Parameter | None = None
    head_bias: Parameter | None = None

    def trainable_parameters(self) -> List[Parameter]:
        """Parameters updated while training this task (thresholds + head)."""
        params = list(self.thresholds)
        if self.head_weight is not None:
            params.append(self.head_weight)
        if self.head_bias is not None:
            params.append(self.head_bias)
        return params

    def num_threshold_values(self) -> int:
        """Total number of threshold scalars stored for this task."""
        return sum(int(np.prod(p.shape)) for p in self.thresholds)

    def num_head_values(self) -> int:
        """Total number of head parameters stored for this task."""
        total = 0
        if self.head_weight is not None:
            total += self.head_weight.size
        if self.head_bias is not None:
            total += self.head_bias.size
        return total

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat state for checkpointing this task's parameters."""
        state: Dict[str, np.ndarray] = {}
        for index, param in enumerate(self.thresholds):
            state[f"threshold.{index}"] = param.data.copy()
        if self.head_weight is not None:
            state["head.weight"] = self.head_weight.data.copy()
        if self.head_bias is not None:
            state["head.bias"] = self.head_bias.data.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore this task's parameters from :meth:`state_dict` output."""
        for index, param in enumerate(self.thresholds):
            key = f"threshold.{index}"
            if key not in state:
                raise KeyError(f"missing '{key}' in task state")
            if state[key].shape != param.data.shape:
                raise ValueError(f"shape mismatch for '{key}'")
            param.data = state[key].copy()
        if self.head_weight is not None:
            self.head_weight.data = state["head.weight"].copy()
        if self.head_bias is not None:
            self.head_bias.data = state["head.bias"].copy()


class TaskRegistry:
    """Ordered registry of the child tasks known to a :class:`MimeNetwork`."""

    def __init__(self) -> None:
        self._tasks: Dict[str, TaskParameters] = {}
        self._active: str | None = None

    def register(self, task: TaskParameters) -> None:
        if task.name in self._tasks:
            raise ValueError(f"task '{task.name}' is already registered")
        self._tasks[task.name] = task
        if self._active is None:
            self._active = task.name

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[TaskParameters]:
        return iter(self._tasks.values())

    def names(self) -> List[str]:
        return list(self._tasks)

    def get(self, name: str) -> TaskParameters:
        if name not in self._tasks:
            raise KeyError(f"unknown task '{name}'; registered: {self.names()}")
        return self._tasks[name]

    @property
    def active_name(self) -> str:
        if self._active is None:
            raise RuntimeError("no task has been registered yet")
        return self._active

    def set_active(self, name: str) -> TaskParameters:
        task = self.get(name)
        self._active = name
        return task

    @property
    def active(self) -> TaskParameters:
        return self.get(self.active_name)
