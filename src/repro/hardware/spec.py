"""Systolic-array hardware specification (Table IV of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SystolicArraySpec:
    """Parameters of the Eyeriss-style accelerator used in the evaluation.

    All energy values are normalised with respect to the energy of one MAC
    operation in a PE (``e_mac = 1``), following Table IV of the paper.

    Attributes
    ----------
    technology:
        Process node label (informational only).
    precision_bits:
        Bit width of weights, activations, thresholds and partial sums.
    pe_array_size:
        Number of processing elements; under the output-stationary dataflow
        each PE accumulates one output neuron at a time.
    weight_cache_bytes, activation_cache_bytes, threshold_cache_bytes:
        On-chip cache capacities.  Table IV lists 156 KB for the
        (activation, weight, threshold) caches; the paper's cache-reduction
        ablation shrinks this to 128 KB.
    spad_bytes:
        Per-PE scratchpad capacity.
    e_dram, e_cache, e_reg, e_mac:
        Normalised energy per access at each level of the hierarchy.
    e_cmp:
        Normalised energy of one threshold comparison (CMP unit inside the PE).
        The paper folds this into the PE; we keep it explicit but equal to one
        MAC by default.
    spad_reuse:
        Average number of MACs served by one cache-to-scratchpad operand fetch
        (temporal reuse inside the spad window under the OS dataflow).
    """

    technology: str = "65nm CMOS"
    precision_bits: int = 16
    pe_array_size: int = 1024
    weight_cache_bytes: int = 156 * 1024
    activation_cache_bytes: int = 156 * 1024
    threshold_cache_bytes: int = 156 * 1024
    spad_bytes: int = 512
    e_dram: float = 200.0
    e_cache: float = 6.0
    e_reg: float = 2.0
    e_mac: float = 1.0
    e_cmp: float = 1.0
    spad_reuse: float = 8.0

    def __post_init__(self) -> None:
        if self.precision_bits <= 0:
            raise ValueError("precision_bits must be positive")
        if self.pe_array_size <= 0:
            raise ValueError("pe_array_size must be positive")
        if min(self.weight_cache_bytes, self.activation_cache_bytes, self.threshold_cache_bytes) <= 0:
            raise ValueError("cache sizes must be positive")
        if self.spad_bytes <= 0:
            raise ValueError("spad_bytes must be positive")
        if min(self.e_dram, self.e_cache, self.e_reg, self.e_mac, self.e_cmp) < 0:
            raise ValueError("energies must be non-negative")
        if self.spad_reuse < 1:
            raise ValueError("spad_reuse must be at least 1")

    @property
    def bytes_per_word(self) -> float:
        return self.precision_bits / 8.0

    def weight_cache_words(self) -> int:
        return int(self.weight_cache_bytes / self.bytes_per_word)

    def activation_cache_words(self) -> int:
        return int(self.activation_cache_bytes / self.bytes_per_word)

    def threshold_cache_words(self) -> int:
        return int(self.threshold_cache_bytes / self.bytes_per_word)


def default_spec() -> SystolicArraySpec:
    """Case-A of Fig. 9: PE array 1024, caches 156 KB (the Table IV defaults)."""
    return SystolicArraySpec()


def reduced_pe_spec(pe_array_size: int = 256) -> SystolicArraySpec:
    """Case-B of Fig. 9: a smaller PE array (default 256), caches unchanged."""
    return replace(default_spec(), pe_array_size=pe_array_size)


def reduced_cache_spec(cache_bytes: int = 128 * 1024) -> SystolicArraySpec:
    """Case-C of Fig. 9: smaller caches (default 128 KB), PE array unchanged."""
    return replace(
        default_spec(),
        weight_cache_bytes=cache_bytes,
        activation_cache_bytes=cache_bytes,
        threshold_cache_bytes=cache_bytes,
    )
