"""Task schedules, sparsity profiles and execution configurations.

The energy difference between conventional multi-task inference and MIME is
decided by *when task-specific parameters must be re-loaded from DRAM*.  This
module describes everything the simulator needs to know about a run:

* the **schedule**: the ordered sequence of tasks of the images in the batch
  (Singular task mode groups images of the same task; Pipelined task mode
  interleaves tasks);
* the **sparsity profile**: per task and per layer, the fraction of zero output
  activations (Table II for MIME, Table III for the ReLU baselines, or values
  measured on the surrogate workloads);
* the **execution configuration**: whether zero activations are skipped, whether
  thresholds are used, whether weights are shared across tasks (MIME) or
  per-task (conventional), and the weight density (0.1 for 90 %-pruned models).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Sequence

from repro.models.shapes import LayerShape


class ParameterSharing(Enum):
    """Whether a layer's weights are shared across tasks."""

    PER_TASK = "per_task"  # conventional multi-task inference: one weight set per task
    SHARED = "shared"  # MIME: W_parent reused by every task


@dataclass(frozen=True)
class ExecutionConfig:
    """How the accelerator executes a batch.

    The three cases of the paper's Figures 5-6 map to:

    * Case-1: ``ExecutionConfig("case1", zero_skip=False, use_thresholds=False,
      sharing=ParameterSharing.PER_TASK)``
    * Case-2: same but ``zero_skip=True``
    * Case-3 / MIME: ``zero_skip=True, use_thresholds=True, sharing=SHARED``
    * Fig. 8 pruned baseline: Case-2 with ``weight_density=0.1``.
    """

    name: str
    zero_skip: bool
    use_thresholds: bool
    sharing: ParameterSharing
    weight_density: float = 1.0
    compressed_weight_storage: bool = False
    weight_zero_skipping: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.weight_density <= 1.0:
            raise ValueError("weight_density must lie in (0, 1]")
        if self.use_thresholds and self.sharing is ParameterSharing.PER_TASK:
            raise ValueError(
                "threshold-based execution implies shared parent weights (MIME)"
            )


def case1_config() -> ExecutionConfig:
    """Baseline task-models without zero-skipping (paper Case-1)."""
    return ExecutionConfig(
        "case1-baseline-dense",
        zero_skip=False,
        use_thresholds=False,
        sharing=ParameterSharing.PER_TASK,
    )


def case2_config() -> ExecutionConfig:
    """Baseline task-models with zero-skipping (paper Case-2)."""
    return ExecutionConfig(
        "case2-baseline-zeroskip",
        zero_skip=True,
        use_thresholds=False,
        sharing=ParameterSharing.PER_TASK,
    )


def mime_config() -> ExecutionConfig:
    """MIME execution (paper Case-3): shared weights, thresholds, zero-skipping."""
    return ExecutionConfig(
        "mime",
        zero_skip=True,
        use_thresholds=True,
        sharing=ParameterSharing.SHARED,
    )


def pruned_config(
    weight_density: float = 0.1,
    compressed_weight_storage: bool = False,
    weight_zero_skipping: bool = False,
) -> ExecutionConfig:
    """Conventional inference with 90 %-pruned per-task models (Fig. 8 comparison).

    The defaults model the paper's accelerator: it skips zero *activations*
    dynamically but has neither a sparse-weight decoder at the DRAM interface
    nor weight-zero gating in the PEs, so unstructured 90 % weight sparsity
    does not reduce weight DRAM traffic or MAC counts — which is exactly why
    the paper finds that even heavily pruned per-task models lose to MIME in
    Pipelined task mode once weights outnumber thresholds.  The two flags turn
    on idealised compressed weight storage and weight-zero skipping for
    ablation studies.
    """
    return ExecutionConfig(
        "pruned-conventional",
        zero_skip=True,
        use_thresholds=False,
        sharing=ParameterSharing.PER_TASK,
        weight_density=weight_density,
        compressed_weight_storage=compressed_weight_storage,
        weight_zero_skipping=weight_zero_skipping,
    )


@dataclass
class LayerSparsityProfile:
    """Per-task, per-layer output-activation sparsity.

    ``per_task[task][layer_name]`` is the fraction of zero activations the
    layer produces for inputs of that task.  Missing layers fall back to
    ``default_sparsity`` (0 = fully dense).
    """

    per_task: Dict[str, Dict[str, float]] = field(default_factory=dict)
    default_sparsity: float = 0.0

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        if not 0.0 <= self.default_sparsity <= 1.0:
            raise ValueError("default_sparsity must lie in [0, 1]")
        for task, layers in self.per_task.items():
            for layer, value in layers.items():
                if not 0.0 <= value <= 1.0:
                    raise ValueError(
                        f"sparsity {value} for task '{task}' layer '{layer}' outside [0, 1]"
                    )

    def tasks(self) -> List[str]:
        return list(self.per_task)

    def output_sparsity(self, task: str, layer_name: str) -> float:
        layers = self.per_task.get(task, {})
        return layers.get(layer_name, self.default_sparsity)

    def output_density(self, task: str, layer_name: str) -> float:
        return 1.0 - self.output_sparsity(task, layer_name)

    def input_density(self, task: str, layer_index: int, shapes: Sequence[LayerShape]) -> float:
        """Density of the activations *entering* layer ``layer_index``.

        The first layer consumes the raw image (dense); every later layer
        consumes the previous weight layer's output.
        """
        if layer_index == 0:
            return 1.0
        previous = shapes[layer_index - 1]
        return self.output_density(task, previous.name)

    @classmethod
    def uniform(cls, tasks: Sequence[str], sparsity: float) -> "LayerSparsityProfile":
        """A profile with the same sparsity for every layer of every task."""
        return cls(per_task={task: {} for task in tasks}, default_sparsity=sparsity)


@dataclass(frozen=True)
class InferencePass:
    """One image travelling through the network (one slot of the schedule)."""

    task: str


def singular_task_schedule(
    tasks: Sequence[str], images_per_task: int = 3
) -> List[InferencePass]:
    """Singular task mode: ``images_per_task`` consecutive images per task.

    The paper's Fig. 5 experiment uses a batch of three images all belonging to
    one task; calling this with a single task reproduces that exactly, and with
    several tasks it produces back-to-back singular batches.
    """
    if images_per_task <= 0:
        raise ValueError("images_per_task must be positive")
    if not tasks:
        raise ValueError("at least one task is required")
    return [InferencePass(task) for task in tasks for _ in range(images_per_task)]


def pipelined_task_schedule(tasks: Sequence[str], rounds: int = 1) -> List[InferencePass]:
    """Pipelined task mode: tasks interleaved one image at a time.

    With the paper's three child tasks and ``rounds=1`` this is the batch of
    "three input images in succession belonging to three different tasks".
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    if not tasks:
        raise ValueError("at least one task is required")
    return [InferencePass(task) for _ in range(rounds) for task in tasks]


def parameter_load_events(
    schedule: Sequence[InferencePass], sharing: ParameterSharing
) -> int:
    """Number of times task-specific *weights* must be (re-)loaded for a layer.

    Conventional inference reloads whenever two consecutive images belong to
    different tasks (plus the initial load); MIME's shared weights are loaded
    exactly once for the whole batch.
    """
    if not schedule:
        raise ValueError("the schedule is empty")
    if sharing is ParameterSharing.SHARED:
        return 1
    events = 1
    for previous, current in zip(schedule, schedule[1:]):
        if previous.task != current.task:
            events += 1
    return events


def threshold_load_events(schedule: Sequence[InferencePass]) -> int:
    """Number of times task-specific thresholds must be (re-)loaded (MIME only).

    Thresholds are per-task, so they reload on every task switch even though
    the weights stay resident.
    """
    if not schedule:
        raise ValueError("the schedule is empty")
    events = 1
    for previous, current in zip(schedule, schedule[1:]):
        if previous.task != current.task:
            events += 1
    return events
