"""Energy bookkeeping for the systolic-array model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List


@dataclass
class EnergyBreakdown:
    """Energy split across the memory hierarchy, in MAC-normalised units.

    Attributes mirror the stacked bars of Fig. 5/6 of the paper:
    ``e_dram`` (off-chip accesses), ``e_cache`` (on-chip cache accesses),
    ``e_reg`` (PE scratchpad accesses) and ``e_mac`` (MAC + comparator compute).
    """

    e_dram: float = 0.0
    e_cache: float = 0.0
    e_reg: float = 0.0
    e_mac: float = 0.0

    @property
    def total(self) -> float:
        return self.e_dram + self.e_cache + self.e_reg + self.e_mac

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            e_dram=self.e_dram + other.e_dram,
            e_cache=self.e_cache + other.e_cache,
            e_reg=self.e_reg + other.e_reg,
            e_mac=self.e_mac + other.e_mac,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        return EnergyBreakdown(
            e_dram=self.e_dram * factor,
            e_cache=self.e_cache * factor,
            e_reg=self.e_reg * factor,
            e_mac=self.e_mac * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "e_dram": self.e_dram,
            "e_cache": self.e_cache,
            "e_reg": self.e_reg,
            "e_mac": self.e_mac,
            "total": self.total,
        }


@dataclass
class LayerEnergyReport:
    """Per-layer energy breakdowns for one scenario (one bar group of Fig. 5/6)."""

    scenario: str
    per_layer: Dict[str, EnergyBreakdown] = field(default_factory=dict)

    def add_layer(self, name: str, energy: EnergyBreakdown) -> None:
        if name in self.per_layer:
            self.per_layer[name] = self.per_layer[name] + energy
        else:
            self.per_layer[name] = energy

    def layer_names(self) -> List[str]:
        return list(self.per_layer)

    def total(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for energy in self.per_layer.values():
            total = total + energy
        return total

    def layer_totals(self, layer_names: Iterable[str] | None = None) -> Dict[str, float]:
        names = list(layer_names) if layer_names is not None else self.layer_names()
        return {name: self.per_layer[name].total for name in names}


def energy_saving_ratio(reference: LayerEnergyReport, improved: LayerEnergyReport) -> Dict[str, float]:
    """Per-layer ``reference / improved`` total-energy ratios (savings factors)."""
    ratios: Dict[str, float] = {}
    for name, energy in reference.per_layer.items():
        if name not in improved.per_layer:
            continue
        denominator = improved.per_layer[name].total
        if denominator <= 0:
            raise ValueError(f"non-positive energy for layer '{name}' in '{improved.scenario}'")
        ratios[name] = energy.total / denominator
    return ratios
