"""Layerwise throughput model (Fig. 7 of the paper).

Throughput is measured per layer as the amount of work delivered per cycle for
the batch.  Because every scenario produces the same logical outputs for the
same batch, the paper reports throughput *relative to the dense baseline*
(Case-1): the relative throughput of scenario S on layer l is simply

``cycles_case1(l) / cycles_S(l)``

— fewer cycles for the same outputs means proportionally higher throughput.
The cycle counts come from the OS dataflow model where zero-skipped MACs take
no cycle, so MIME's dynamic neuronal sparsity directly turns into the
~2.8-3.0x layerwise improvement reported in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.hardware.simulator import BatchResult


@dataclass
class ThroughputReport:
    """Relative layerwise throughput of one scenario against a reference."""

    scenario: str
    reference: str
    per_layer: Dict[str, float] = field(default_factory=dict)

    def layer_names(self) -> List[str]:
        return list(self.per_layer)

    @property
    def mean(self) -> float:
        if not self.per_layer:
            return 0.0
        return sum(self.per_layer.values()) / len(self.per_layer)

    @property
    def min(self) -> float:
        return min(self.per_layer.values()) if self.per_layer else 0.0

    @property
    def max(self) -> float:
        return max(self.per_layer.values()) if self.per_layer else 0.0


def relative_throughput(reference: BatchResult, candidate: BatchResult) -> ThroughputReport:
    """Per-layer throughput of ``candidate`` normalised to ``reference``."""
    report = ThroughputReport(scenario=candidate.scenario, reference=reference.scenario)
    reference_cycles = reference.cycles_by_layer()
    for name, cycles in candidate.cycles_by_layer().items():
        if name not in reference_cycles:
            continue
        if cycles <= 0:
            raise ValueError(f"non-positive cycle count for layer '{name}'")
        report.per_layer[name] = reference_cycles[name] / cycles
    return report
