"""The systolic-array batch simulator.

Combines the per-layer cost model (:mod:`repro.hardware.dataflow`), the task
schedule and the sparsity profile (:mod:`repro.hardware.scenario`) into
per-layer and per-batch energy/cycle results — the quantities plotted in
Figures 5, 6, 7, 8 and 9 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.models.shapes import LayerShape
from repro.utils.ratios import fraction_saved
from repro.hardware.spec import SystolicArraySpec, default_spec
from repro.hardware.energy import EnergyBreakdown, LayerEnergyReport
from repro.hardware.dataflow import AccessCounts, LayerCostModel
from repro.hardware.scenario import (
    ExecutionConfig,
    InferencePass,
    LayerSparsityProfile,
    parameter_load_events,
    threshold_load_events,
)


@dataclass
class LayerResult:
    """Aggregated result for one layer over the whole batch."""

    name: str
    energy: EnergyBreakdown
    macs: float
    dram_words: float
    param_dram_words: float
    act_dram_words: float
    cache_accesses: float
    reg_accesses: float
    cycles: float
    weight_load_events: int
    threshold_load_events: int


@dataclass
class BatchResult:
    """Result of simulating one batch schedule under one execution config.

    ``measured_dense_macs`` / ``measured_effective_macs`` are optional
    *software* counters attached when the schedule came from a real engine
    run (:func:`repro.engine.recorder_hardware_report`): the MACs an
    unspecialized dense plan would have executed versus what the serving
    engine actually did after per-task plan specialization and the dynamic
    sparse fast path.  They complement :attr:`LayerResult.macs`, which is the
    analytical accelerator estimate.
    """

    scenario: str
    spec: SystolicArraySpec
    layers: List[LayerResult] = field(default_factory=list)
    measured_dense_macs: int = 0
    measured_effective_macs: int = 0

    def measured_mac_reduction(self) -> float:
        """Fraction of dense MACs the engine avoided (0.0 without measurements)."""
        return fraction_saved(self.measured_dense_macs, self.measured_effective_macs)

    def layer_names(self) -> List[str]:
        return [layer.name for layer in self.layers]

    def layer(self, name: str) -> LayerResult:
        by_name = self._layers_by_name()
        if name not in by_name:
            raise KeyError(f"no layer named '{name}' in this result")
        return by_name[name]

    def _layers_by_name(self) -> Dict[str, LayerResult]:
        # Rebuilt lazily whenever the layer list has grown (results are
        # appended during simulation, then queried many times per figure).
        cache = getattr(self, "_name_index", None)
        if cache is None or len(cache) != len(self.layers):
            cache = {layer.name: layer for layer in self.layers}
            object.__setattr__(self, "_name_index", cache)
        return cache

    def energy_report(self) -> LayerEnergyReport:
        report = LayerEnergyReport(scenario=self.scenario)
        for layer in self.layers:
            report.add_layer(layer.name, layer.energy)
        return report

    def total_energy(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for layer in self.layers:
            total = total + layer.energy
        return total

    def total_cycles(self) -> float:
        return sum(layer.cycles for layer in self.layers)

    def cycles_by_layer(self) -> Dict[str, float]:
        return {layer.name: layer.cycles for layer in self.layers}


class SystolicArraySimulator:
    """Analytical simulator for multi-task inference on the systolic array."""

    def __init__(self, spec: SystolicArraySpec | None = None) -> None:
        self.spec = spec if spec is not None else default_spec()
        self._cost_model = LayerCostModel(self.spec)

    # ------------------------------------------------------------------ public --
    def run(
        self,
        shapes: Sequence[LayerShape],
        schedule: Sequence[InferencePass],
        profile: LayerSparsityProfile,
        config: ExecutionConfig,
        conv_only: bool = False,
    ) -> BatchResult:
        """Simulate ``schedule`` through the network described by ``shapes``.

        Parameters
        ----------
        shapes:
            Layer geometry, in network order.
        schedule:
            Ordered task labels of the batch's images.
        profile:
            Per-task, per-layer output sparsity (only used when the execution
            config skips zeros or applies thresholds).
        config:
            Execution configuration (Case-1 / Case-2 / MIME / pruned).
        conv_only:
            Restrict the report to convolutional layers (the paper's figures
            plot convolutional layers only).
        """
        if not shapes:
            raise ValueError("shapes must not be empty")
        if not schedule:
            raise ValueError("schedule must not be empty")

        weight_events = parameter_load_events(schedule, config.sharing)
        thr_events = threshold_load_events(schedule) if config.use_thresholds else 0

        result = BatchResult(scenario=config.name, spec=self.spec)
        for index, layer in enumerate(shapes):
            if conv_only and layer.kind != "conv":
                continue
            result.layers.append(
                self._simulate_layer(
                    layer, index, shapes, schedule, profile, config, weight_events, thr_events
                )
            )
        return result

    # ----------------------------------------------------------------- private --
    def _simulate_layer(
        self,
        layer: LayerShape,
        layer_index: int,
        shapes: Sequence[LayerShape],
        schedule: Sequence[InferencePass],
        profile: LayerSparsityProfile,
        config: ExecutionConfig,
        weight_events: int,
        thr_events: int,
    ) -> LayerResult:
        spec = self.spec

        # Per-image (data-dependent) access counts, cached per task.
        per_task_counts: Dict[str, AccessCounts] = {}
        total_macs = 0.0
        total_comparisons = 0.0
        total_act_dram = 0.0
        total_cache = 0.0
        total_reg = 0.0
        total_cycles = 0.0
        for image in schedule:
            if image.task not in per_task_counts:
                per_task_counts[image.task] = self._cost_model.layer_access_counts(
                    layer,
                    input_density=profile.input_density(image.task, layer_index, shapes),
                    output_density=profile.output_density(image.task, layer.name),
                    weight_density=config.weight_density,
                    zero_skip=config.zero_skip,
                    use_thresholds=config.use_thresholds,
                    first_layer=layer_index == 0,
                    compressed_weight_storage=config.compressed_weight_storage,
                    weight_zero_skipping=config.weight_zero_skipping,
                )
            counts = per_task_counts[image.task]
            total_macs += counts.macs
            total_comparisons += counts.comparisons
            total_act_dram += counts.dram_activation_words
            total_cache += counts.cache_accesses
            total_reg += counts.reg_accesses
            total_cycles += counts.cycles

        # Parameter traffic is charged per load event, not per image.
        reference_counts = next(iter(per_task_counts.values()))
        weight_dram = reference_counts.dram_weight_words * weight_events
        threshold_dram = reference_counts.dram_threshold_words * thr_events
        parameter_dram = weight_dram + threshold_dram

        energy = EnergyBreakdown(
            e_dram=spec.e_dram * (parameter_dram + total_act_dram),
            e_cache=spec.e_cache * (total_cache + parameter_dram),
            e_reg=spec.e_reg * total_reg,
            e_mac=spec.e_mac * total_macs + spec.e_cmp * total_comparisons,
        )
        return LayerResult(
            name=layer.name,
            energy=energy,
            macs=total_macs,
            dram_words=parameter_dram + total_act_dram,
            param_dram_words=parameter_dram,
            act_dram_words=total_act_dram,
            cache_accesses=total_cache + parameter_dram,
            reg_accesses=total_reg,
            cycles=total_cycles,
            weight_load_events=weight_events,
            threshold_load_events=thr_events,
        )

    # ------------------------------------------------------------ convenience --
    def compare(
        self,
        shapes: Sequence[LayerShape],
        schedule: Sequence[InferencePass],
        profiles: Dict[str, LayerSparsityProfile],
        configs: Sequence[ExecutionConfig],
        conv_only: bool = True,
    ) -> Dict[str, BatchResult]:
        """Run several execution configs over the same schedule.

        ``profiles`` maps config name -> sparsity profile (Case-1/2 use the
        baseline ReLU profile, MIME uses the threshold profile).  Configs whose
        name is missing fall back to a profile registered under ``"default"``.
        """
        results: Dict[str, BatchResult] = {}
        for config in configs:
            profile = profiles.get(config.name, profiles.get("default"))
            if profile is None:
                raise KeyError(
                    f"no sparsity profile for config '{config.name}' and no 'default' profile"
                )
            results[config.name] = self.run(shapes, schedule, profile, config, conv_only=conv_only)
        return results
