"""Output-stationary dataflow cost model.

The model counts, for one weight layer processed for one input image, the
number of accesses at every level of the memory hierarchy.  It follows the
description in Section III-B of the paper and makes the following explicit
assumptions (all of them are the same abstraction level as the paper's own
co-simulation; none require cycle-accurate simulation):

* **Output-stationary (OS) tiling.**  The layer's ``N_out`` output neurons are
  computed in ``ceil(N_out / PE)`` passes; during a pass every PE accumulates
  one output neuron, so partial sums never leave the PE registers.

* **Parameter (weight / threshold) DRAM traffic.**  Weights are read from DRAM
  into the weight cache once per *weight-load event* (how often a load event
  happens is decided by the task schedule — see
  :mod:`repro.hardware.scenario`).  If the layer's stored weights do not fit in
  the weight cache, the spatial positions of an output channel span several
  passes and the channel's weights must be re-streamed from DRAM for each of
  those passes; this is modelled by the re-fetch factor
  ``ceil(P / PE)`` with ``P = H_out * W_out`` (this is what penalises small PE
  arrays in the paper's Fig. 9 for the middle convolutional layers).
  Task-specific thresholds (MIME) are read once per threshold-load event; they
  are used exactly once per output neuron so they carry no re-fetch factor.

* **Activation DRAM traffic.**  The previous layer's activations are read from
  DRAM once per image (non-zero values only when zero-skipping / MIME
  compression is active) and the layer's outputs are written back once.

* **Cache traffic.**  Operands move cache -> scratchpad once per MAC divided by
  the architectural scratchpad reuse factor (``spec.spad_reuse``); thresholds
  add one cache read per output neuron, and outputs add one cache write per
  produced (non-zero) activation.

* **Zero-skipping.**  When enabled, MACs, operand fetches and activation
  transfers for zero input activations are skipped entirely (the paper's
  Case-2 baseline and MIME); zero weights of pruned models are skipped the
  same way.

* **Compute.**  Every effective MAC costs ``e_mac``; MIME adds one threshold
  comparison per output neuron at ``e_cmp``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.models.shapes import LayerShape
from repro.hardware.spec import SystolicArraySpec


@dataclass
class AccessCounts:
    """Raw access counts for one layer (per image unless stated otherwise).

    DRAM counts related to parameters (``dram_weight_words``,
    ``dram_threshold_words``) are *per load event*; the scheduler decides how
    many load events a batch incurs and scales them accordingly.
    """

    macs: float = 0.0
    comparisons: float = 0.0
    dram_weight_words: float = 0.0
    dram_threshold_words: float = 0.0
    dram_act_in_words: float = 0.0
    dram_act_out_words: float = 0.0
    cache_weight_reads: float = 0.0
    cache_act_reads: float = 0.0
    cache_threshold_reads: float = 0.0
    cache_act_writes: float = 0.0
    reg_accesses: float = 0.0
    passes: int = 0
    cycles: float = 0.0

    @property
    def dram_parameter_words(self) -> float:
        return self.dram_weight_words + self.dram_threshold_words

    @property
    def dram_activation_words(self) -> float:
        return self.dram_act_in_words + self.dram_act_out_words

    @property
    def cache_accesses(self) -> float:
        return (
            self.cache_weight_reads
            + self.cache_act_reads
            + self.cache_threshold_reads
            + self.cache_act_writes
        )


class LayerCostModel:
    """Per-layer access counting under the OS dataflow."""

    def __init__(self, spec: SystolicArraySpec) -> None:
        self.spec = spec

    # ----------------------------------------------------------------- helpers --
    def output_passes(self, layer: LayerShape) -> int:
        """Number of OS passes needed to cover every output neuron once."""
        return max(1, math.ceil(layer.output_neurons / self.spec.pe_array_size))

    def weight_refetch_factor(self, layer: LayerShape, stored_weight_words: float) -> float:
        """How many times each stored weight crosses the DRAM interface per load event.

        1.0 when the stored weights fit in the weight cache; otherwise the
        number of passes an output channel's spatial positions are spread over
        (``ceil(P / PE)``), because the channel's weights have to be re-streamed
        for each of those passes once the cache cannot retain the layer.
        """
        stored_bytes = stored_weight_words * self.spec.bytes_per_word
        if stored_bytes <= self.spec.weight_cache_bytes:
            return 1.0
        positions = layer.output_h * layer.output_w
        return float(max(1, math.ceil(positions / self.spec.pe_array_size)))

    # -------------------------------------------------------------------- main --
    def layer_access_counts(
        self,
        layer: LayerShape,
        input_density: float = 1.0,
        output_density: float = 1.0,
        weight_density: float = 1.0,
        zero_skip: bool = True,
        use_thresholds: bool = False,
        first_layer: bool = False,
        compressed_weight_storage: bool = False,
        weight_zero_skipping: bool = False,
    ) -> AccessCounts:
        """Count accesses for one image through one layer.

        Parameters
        ----------
        input_density:
            Fraction of non-zero input activations (1 - sparsity of the
            producing layer for this image/task).
        output_density:
            Fraction of non-zero output activations this layer produces.
        weight_density:
            Fraction of non-zero weights (0.1 for the 90 %-pruned models).
        compressed_weight_storage:
            When ``True`` only the non-zero weights cross the DRAM interface
            (idealised compressed storage); when ``False`` (default, and the
            paper's architecture) unstructured-sparse weights are stored and
            fetched in dense layout.
        weight_zero_skipping:
            When ``True`` MACs with zero weights are gated off in the PEs
            (idealised sparse-weight hardware); the paper's array only skips
            zero activations, so the default is ``False``.
        zero_skip:
            Skip computation/communication of zero activations and weights
            (Case-2 baseline and MIME); when ``False`` everything is dense
            (Case-1 baseline).
        use_thresholds:
            Account for MIME threshold storage traffic and comparisons.
        first_layer:
            The first layer's input is the raw image, which is always dense.
        """
        self._validate_densities(input_density, output_density, weight_density)

        effective_input_density = 1.0 if first_layer else input_density
        act_density = effective_input_density if zero_skip else 1.0
        # Whether zero weights save compute (PE gating) and DRAM traffic
        # (compressed storage) is an architectural choice; the paper's array
        # supports neither, so both default to dense behaviour.
        compute_weight_density = weight_density if weight_zero_skipping else 1.0
        stored_weight_words = layer.weight_count * (
            weight_density if compressed_weight_storage else 1.0
        )

        counts = AccessCounts()
        counts.passes = self.output_passes(layer)

        # --- compute ------------------------------------------------------------
        counts.macs = layer.macs * act_density * compute_weight_density
        if use_thresholds:
            counts.comparisons = float(layer.output_neurons)

        # --- DRAM ---------------------------------------------------------------
        counts.dram_weight_words = stored_weight_words * self.weight_refetch_factor(
            layer, stored_weight_words
        )
        if use_thresholds:
            counts.dram_threshold_words = float(layer.output_neurons)
        counts.dram_act_in_words = layer.input_activations * act_density
        out_density = output_density if (zero_skip or use_thresholds) else 1.0
        counts.dram_act_out_words = layer.output_neurons * out_density

        # --- cache --------------------------------------------------------------
        operand_fetches = 2.0 * counts.macs / self.spec.spad_reuse
        counts.cache_weight_reads = operand_fetches / 2.0
        counts.cache_act_reads = operand_fetches / 2.0
        if use_thresholds:
            counts.cache_threshold_reads = float(layer.output_neurons)
        counts.cache_act_writes = layer.output_neurons * out_density

        # --- scratchpads ----------------------------------------------------------
        counts.reg_accesses = 3.0 * counts.macs
        if use_thresholds:
            counts.reg_accesses += 2.0 * layer.output_neurons

        # --- cycles ---------------------------------------------------------------
        # Each pass takes as many cycles as MACs mapped onto one PE; with
        # zero-skipping the skipped MACs take no cycle.
        utilised_pes = min(self.spec.pe_array_size, layer.output_neurons)
        counts.cycles = counts.macs / max(1.0, float(utilised_pes)) + counts.passes
        return counts

    @staticmethod
    def _validate_densities(*densities: float) -> None:
        for value in densities:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"density {value} outside [0, 1]")
