"""Eyeriss-style systolic-array hardware model (Section III-B of the paper).

The model is *analytical*: for every weight layer it counts DRAM, cache,
scratchpad and MAC accesses under an output-stationary dataflow with optional
zero-skipping, multiplies them by the normalised energy ratios of Table IV
(200x / 6x / 2x / 1x) and aggregates per layer and per batch.  Task scheduling
(Singular vs Pipelined mode) determines how often task-specific parameters
must be re-fetched from DRAM, which is where MIME's weight sharing pays off.
"""

from repro.hardware.spec import (
    SystolicArraySpec,
    default_spec,
    reduced_pe_spec,
    reduced_cache_spec,
)
from repro.hardware.energy import EnergyBreakdown, LayerEnergyReport, energy_saving_ratio
from repro.hardware.dataflow import AccessCounts, LayerCostModel
from repro.hardware.scenario import (
    LayerSparsityProfile,
    InferencePass,
    ParameterSharing,
    ExecutionConfig,
    singular_task_schedule,
    pipelined_task_schedule,
    parameter_load_events,
    threshold_load_events,
    case1_config,
    case2_config,
    mime_config,
    pruned_config,
)
from repro.hardware.simulator import SystolicArraySimulator, LayerResult, BatchResult
from repro.hardware.throughput import ThroughputReport, relative_throughput

__all__ = [
    "SystolicArraySpec",
    "default_spec",
    "reduced_pe_spec",
    "reduced_cache_spec",
    "EnergyBreakdown",
    "LayerEnergyReport",
    "energy_saving_ratio",
    "AccessCounts",
    "LayerCostModel",
    "LayerSparsityProfile",
    "InferencePass",
    "ParameterSharing",
    "ExecutionConfig",
    "singular_task_schedule",
    "pipelined_task_schedule",
    "parameter_load_events",
    "threshold_load_events",
    "case1_config",
    "case2_config",
    "mime_config",
    "pruned_config",
    "SystolicArraySimulator",
    "LayerResult",
    "BatchResult",
    "ThroughputReport",
    "relative_throughput",
]
