"""Serving many tasks from one compiled engine: the train/infer path split.

This example walks the full deployment story the engine subsystem adds on top
of the paper's algorithm:

1. train a shared parent backbone and per-task MIME thresholds (training path:
   float64, backward caches, in-place task rebinding);
2. ``compile_network`` the trained model into an immutable float32
   :class:`~repro.engine.EnginePlan` — BatchNorm folded away, convolutions
   fused into im2col-GEMM-mask kernels, per-task thresholds pre-laid-out;
3. serve an interleaved multi-task request stream with
   :class:`~repro.engine.MultiTaskEngine` in both of the paper's hardware
   scenarios (singular vs pipelined), comparing throughput with the training
   path;
4. feed the *measured* per-layer sparsity of the run into the systolic-array
   simulator, turning real traffic into an energy/cycle estimate.

Run with:  python examples/compiled_engine_serving.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines import train_parent
from repro.datasets import DataLoader, build_child_tasks, imagenet_surrogate
from repro.engine import MultiTaskEngine, compile_network
from repro.mime import MimeNetwork, ThresholdTrainer
from repro.models import extract_layer_shapes, vgg_small


def main() -> None:
    rng = np.random.default_rng(1)

    # --- training path -----------------------------------------------------
    parent_task = imagenet_surrogate(scale=0.5, backbone_size=32, samples_per_class=25)
    parent = vgg_small(num_classes=parent_task.num_classes, input_size=32, rng=rng)
    print("Training the shared parent backbone ...")
    train_parent(parent, parent_task, epochs=5, batch_size=32, rng=rng)

    children = build_child_tasks(scale=0.6, backbone_size=32, samples_per_class=30)
    network = MimeNetwork(parent)
    trainer = ThresholdTrainer(network, lr=1e-3, beta=1e-6)
    for task in children:
        network.add_task(task.name, task.num_classes, rng=rng)
        print(f"Training thresholds for child task '{task.name}' ...")
        trainer.train_task(
            task.name, DataLoader(task.train, batch_size=32, shuffle=True, rng=rng), epochs=6
        )

    # --- compile -----------------------------------------------------------
    network.eval()
    plan = compile_network(network, dtype=np.float32)
    print(
        f"\nCompiled plan: {len(plan.kernels)} fused kernels, "
        f"{len(plan.task_names())} task plans, dtype {plan.dtype}"
    )

    # --- serve an interleaved request stream --------------------------------
    request_stream = []
    for round_index in range(8):
        for task in children:
            index = rng.integers(0, len(task.test))
            image, label = task.test[int(index)]
            request_stream.append((task.name, image, int(label)))

    engine = MultiTaskEngine(plan, micro_batch=4)
    for task_name, image, _ in request_stream:
        engine.submit(task_name, image)

    start = time.perf_counter()
    outputs, stats = engine.run_pending(mode="pipelined")
    elapsed = time.perf_counter() - start

    correct = sum(
        int(np.argmax(logits) == label)
        for logits, (_, _, label) in zip(outputs, request_stream)
    )
    print(
        f"Pipelined serving: {stats.num_images} images in {stats.num_batches} micro-batches "
        f"({stats.task_switches} task switches), {stats.num_images / elapsed:,.0f} images/sec, "
        f"accuracy {correct}/{len(request_stream)}"
    )

    # Reference: the same stream through the training-path forward.
    start = time.perf_counter()
    for task_name, image, _ in request_stream:
        network.forward(image[None, ...], task=task_name)
    train_elapsed = time.perf_counter() - start
    print(
        f"Training-path forward on the same stream: "
        f"{len(request_stream) / train_elapsed:,.0f} images/sec "
        f"(engine speedup {train_elapsed / elapsed:.1f}x)"
    )

    # --- hardware estimate from the measured run -----------------------------
    for task_name in plan.task_names():
        print(f"  measured mean sparsity [{task_name}]: {engine.recorder.mean_sparsity(task_name):.3f}")
    report = engine.hardware_report(extract_layer_shapes(parent), conv_only=True)
    print(
        f"Systolic-array estimate for the measured pipelined run: "
        f"{report.total_energy().total:,.0f} energy units, {report.total_cycles():,.0f} cycles"
    )


if __name__ == "__main__":
    main()
