"""Observability: windowed snapshots, the event log, and the /metrics endpoint.

A cumulative report tells you how a run *went*; watching a live fleet needs
the streaming layer.  This example:

1. builds a multi-task MIME network, compiles it, and starts a
   :class:`ShardedRuntime` with a short metrics window;
2. stands up the Prometheus endpoint (``MetricsServer`` on a stdlib
   ``http.server`` thread — the same thing ``repro serve --metrics-port``
   wires up) and scrapes it over HTTP mid-load;
3. replays a bursty :class:`LoadGenerator` stream and prints each
   :class:`WindowSnapshot` as it closes — per-window throughput, per-shard
   image deltas and queue-depth gauges;
4. hot-swaps the plan mid-run so the event log has something to say, then
   shows that the window deltas sum exactly to the final report.

Run with:  python examples/observability.py
"""

from __future__ import annotations

import os
import urllib.request

import numpy as np

from repro.engine import compile_network
from repro.mime import MimeNetwork, add_structured_sparsity_task
from repro.models import vgg_tiny
from repro.serving import LoadGenerator, MetricsServer, ShardedRuntime

TASKS = ("news", "photos", "maps")
INPUT_SIZE = 16
WORKERS = min(2, os.cpu_count() or 1)
PHASES = 4
REQUESTS_PER_PHASE = 24


def build_plan(rng: np.random.Generator):
    backbone = vgg_tiny(num_classes=8, input_size=INPUT_SIZE, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for name in TASKS:
        add_structured_sparsity_task(
            network, name, num_classes=5, rng=rng, dead_fraction=0.3
        )
    return network, compile_network(network, dtype=np.float32)


def print_window(snapshot) -> None:
    shards = ", ".join(
        f"shard {index}: {count}" for index, count in sorted(snapshot.per_shard.items())
    )
    print(
        f"  window {snapshot.index}: {snapshot.completed} images in "
        f"{snapshot.duration:.2f}s ({snapshot.throughput:.0f}/s), "
        f"miss rate {snapshot.miss_rate:.0%}, [{shards or 'idle'}], "
        f"queue depth {sum(snapshot.queue_depth.values())}"
    )


def main() -> None:
    rng = np.random.default_rng(11)
    network, plan = build_plan(rng)

    runtime = ShardedRuntime(
        plan,
        workers=WORKERS,
        micro_batch=8,
        max_wait=0.01,
        window_interval=0.25,
        heartbeat_interval=0.1,
    )
    generator = LoadGenerator.bursty(TASKS, rate=400.0, seed=3, burst_factor=4.0)
    pools = {
        task: rng.normal(size=(8, *plan.input_shape)).astype(np.float32)
        for task in TASKS
    }

    with runtime:
        # The background poller closes windows on the wall clock; tests do the
        # same deterministically by driving stream.poll() under a ManualClock.
        runtime.stream.start()
        with MetricsServer(runtime.stream) as server:
            print(f"Prometheus endpoint: {server.url}")
            for phase in range(PHASES):
                futures = generator.replay(
                    runtime, pools, num_requests=REQUESTS_PER_PHASE, time_scale=1.0
                )
                for future in futures:
                    future.result(timeout=60.0)
                if phase == 1:  # give the event log a hot-swap to record
                    runtime.swap(runtime.plans, timeout=60.0)
            for snapshot in runtime.stream.windows():
                print_window(snapshot)

            body = urllib.request.urlopen(server.url, timeout=10).read().decode()
            interesting = (
                "repro_serving_completed_total",
                "repro_serving_shard_queue_depth",
                "repro_serving_window_throughput",
                "repro_serving_events_total",
            )
            print("\nscraped /metrics (excerpt):")
            for line in body.splitlines():
                if line.startswith(interesting):
                    print(f"  {line}")

        windowed = sum(s.completed for s in runtime.stream.windows())
        events = runtime.stream.event_counts()
        report = runtime.stop(drain=True)

    print(f"\nevent log: {events or 'no events'}")
    tail = report.completed - windowed
    print(
        f"window deltas sum to {windowed} + {tail} in the still-open tail "
        f"= {report.completed} completed (the final report)"
    )
    print()
    print(report.summary())


if __name__ == "__main__":
    main()
