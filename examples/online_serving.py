"""Online serving: Poisson traffic through the thread-parallel runtime.

Where ``compiled_engine_serving.py`` drains a known request set offline, this
example runs the full *online* story the serving subsystem adds:

1. train a small multi-task MIME network (shared parent + per-task
   thresholds) and compile it to an immutable float32 plan;
2. generate three synthetic traffic scenarios with :class:`LoadGenerator` —
   uniform, skewed (one hot task) and bursty Poisson arrivals;
3. serve each through a :class:`ServingRuntime` — dynamic batching closed on
   size *or* max-wait, deadline-aware scheduling, worker threads with private
   workspace pools, bounded-queue admission control — and print the latency
   percentiles / throughput / task-switch report;
4. feed the *measured online schedule* into the systolic-array simulator: the
   interleaving the worker pool actually produced is the schedule the
   hardware model charges threshold reloads against.

Run with:  python examples/online_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import train_parent
from repro.datasets import DataLoader, build_child_tasks, imagenet_surrogate
from repro.engine import compile_network
from repro.mime import MimeNetwork, ThresholdTrainer
from repro.models import extract_layer_shapes, vgg_small
from repro.serving import LoadGenerator, ServingRuntime


def main() -> None:
    rng = np.random.default_rng(1)

    # --- train + compile (same recipe as compiled_engine_serving.py) --------
    parent_task = imagenet_surrogate(scale=0.5, backbone_size=32, samples_per_class=25)
    parent = vgg_small(num_classes=parent_task.num_classes, input_size=32, rng=rng)
    print("Training the shared parent backbone ...")
    train_parent(parent, parent_task, epochs=4, batch_size=32, rng=rng)

    children = build_child_tasks(scale=0.6, backbone_size=32, samples_per_class=30)
    network = MimeNetwork(parent)
    trainer = ThresholdTrainer(network, lr=1e-3, beta=1e-6)
    for task in children:
        network.add_task(task.name, task.num_classes, rng=rng)
        print(f"Training thresholds for child task '{task.name}' ...")
        trainer.train_task(
            task.name, DataLoader(task.train, batch_size=32, shuffle=True, rng=rng), epochs=4
        )
    network.eval()
    plan = compile_network(network, dtype=np.float32)
    task_names = plan.task_names()
    print(f"\nCompiled plan: {len(plan.kernels)} fused kernels, {len(task_names)} tasks")

    # Serve real test images: one pool per task, requests cycle through it.
    images = {
        task.name: np.stack([task.test[i][0] for i in range(min(32, len(task.test)))])
        for task in children
    }

    # --- three traffic scenarios through the online runtime -----------------
    scenarios = {
        "uniform": LoadGenerator.uniform(task_names, rate=600.0, seed=7),
        "skewed 80/10/10": LoadGenerator.skewed(task_names, rate=600.0,
                                                hot_fraction=0.8, seed=7),
        "bursty 4x": LoadGenerator.bursty(task_names, rate=600.0, burst_factor=4.0,
                                          burst_period=0.1, seed=7),
    }
    last_runtime = None
    for label, generator in scenarios.items():
        runtime = ServingRuntime(
            plan,
            policy="fifo-deadline",
            micro_batch=8,
            max_wait=0.01,           # a lone request waits at most 10 ms for company
            workers=2,               # two worker threads over one immutable plan
            max_pending=512,         # admission control: bounded request queue
        )
        with runtime:
            futures = generator.replay(
                runtime, images, num_requests=120, deadline_slack=0.25
            )
            for future in futures:
                if future is not None:
                    future.result(timeout=30.0)
        print(f"\n--- {label} ---")
        print(runtime.report().summary())
        last_runtime = runtime

    # --- hardware estimate from the measured *online* schedule --------------
    report = last_runtime.hardware_report(extract_layer_shapes(parent), conv_only=True)
    print(
        f"\nSystolic-array estimate for the measured online run "
        f"({last_runtime.recorder.num_images()} images, MIME config): "
        f"{report.total_energy().total:,.0f} energy units, "
        f"{report.total_cycles():,.0f} cycles"
    )


if __name__ == "__main__":
    main()
