"""Hardware analysis: regenerate the paper's energy, throughput and ablation figures.

This example is purely analytical (no training): it uses the full VGG16 layer
geometry and the paper's reported sparsity tables to regenerate Figures 5-9,
printing the per-layer series and the headline ratios next to the paper's
claims.  It is the scripted counterpart of the benchmark harness.

Run with:  python examples/hardware_energy_analysis.py
"""

from __future__ import annotations

from repro.experiments.figures import (
    figure5_singular_energy,
    figure6_pipelined_energy,
    figure7_pipelined_throughput,
    figure8_vs_pruned,
    figure9_ablation,
)
from repro.experiments.report import render_energy_report, render_ratio_table, render_table


def main() -> None:
    # ----------------------------------------------------------- Figures 5 & 6 --
    singular = figure5_singular_energy()
    pipelined = figure6_pipelined_energy()
    print(render_energy_report(singular["reports"], singular["layer_names"],
                               title="Fig. 5 — Singular task mode (total energy per conv layer)"))
    print()
    print(render_energy_report(pipelined["reports"], pipelined["layer_names"],
                               title="Fig. 6 — Pipelined task mode (total energy per conv layer)"))
    print()
    print(render_ratio_table(pipelined["mime_vs_case1"],
                             title="Fig. 6 — MIME saving vs Case-1 (paper: 2.4-3.1x)"))

    # ---------------------------------------------------------------- Figure 7 --
    throughput = figure7_pipelined_throughput()
    print()
    print(render_ratio_table(throughput["mime_vs_case1"],
                             title="Fig. 7 — MIME relative throughput (paper: 2.8-3.0x)",
                             value_name="throughput x"))

    # ---------------------------------------------------------------- Figure 8 --
    pruned = figure8_vs_pruned()
    print()
    print(render_ratio_table(pruned["param_dram_pruned_over_mime"],
                             title="Fig. 8 — parameter-DRAM traffic, pruned / MIME (crossover mechanism)"))
    print(f"MIME wins on total energy in: {pruned['mime_wins']}")

    # ---------------------------------------------------------------- Figure 9 --
    ablation = figure9_ablation()
    rows = [
        [layer, ablation["case_b_over_a"][layer], ablation["case_c_over_a"][layer]]
        for layer in ablation["layer_names"]
    ]
    print()
    print(render_table(["layer", "PE 256 / PE 1024", "cache 128KB / 156KB"], rows,
                       title="Fig. 9 — MIME energy increase under reduced PE array / cache"))
    print(
        f"middle-layer mean increase: PE reduction {ablation['case_b_middle_mean']:.3f}x "
        f"(paper 1.26-1.41x), cache reduction {ablation['case_c_middle_mean']:.3f}x"
    )


if __name__ == "__main__":
    main()
