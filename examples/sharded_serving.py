"""Process-sharded serving: escape the GIL by sharding one plan across cores.

``online_serving.py`` shows the thread backend; this example runs the same
online story on the **process** backend and compares the two:

1. build a multi-task MIME network with per-task structured sparsity and
   compile it to an immutable float32 plan;
2. drain one deterministic mixed-task request stream through a
   :class:`ServingRuntime` (threads) and a :class:`ShardedRuntime`
   (spawned worker processes fed via shared-memory rings, each rebuilding
   the plan from a picklable :class:`~repro.engine.PlanSpec`);
3. verify both backends produced identical logits for every request — the
   process boundary is bit-invisible;
4. print both serving reports plus the systolic-array estimate from the
   sharded fleet's *merged* measured schedule (worker recorders are shipped
   home and folded into one at shutdown).

Run with:  python examples/sharded_serving.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.engine import compile_network
from repro.mime import MimeNetwork, add_structured_sparsity_task
from repro.models import extract_layer_shapes, vgg_small
from repro.serving import ServingRuntime, ShardedRuntime

TASKS = ("news", "photos", "maps")
INPUT_SIZE = 24
MICRO_BATCH = 8
REQUESTS_PER_TASK = 32  # multiple of MICRO_BATCH: deterministic batching
WORKERS = min(4, os.cpu_count() or 1)


def main() -> None:
    rng = np.random.default_rng(7)
    backbone = vgg_small(num_classes=8, input_size=INPUT_SIZE, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for name in TASKS:
        add_structured_sparsity_task(
            network, name, num_classes=10, rng=rng, dead_fraction=0.4, threshold_jitter=0.2
        )
    plan = compile_network(network, dtype=np.float32)
    print(
        f"Compiled plan: {len(plan.kernels)} fused kernels, {len(TASKS)} tasks, "
        f"{WORKERS} workers per backend"
    )

    stream = [
        (task, rng.normal(size=plan.input_shape))
        for _ in range(REQUESTS_PER_TASK)
        for task in TASKS
    ]

    results = {}
    for backend_cls in (ServingRuntime, ShardedRuntime):
        runtime = backend_cls(
            plan,
            policy="fifo-deadline",
            micro_batch=MICRO_BATCH,
            max_wait=5.0,
            workers=WORKERS,
        )
        futures = [runtime.submit(task, image) for task, image in stream]
        runtime.start()  # the sharded start blocks until every worker is ready
        report = runtime.stop(drain=True)
        results[backend_cls.backend] = (
            report,
            [future.result(timeout=60.0) for future in futures],
            runtime,
        )
        print()
        print(report.summary())

    # The process boundary is bit-invisible: same batcher, same deterministic
    # micro-batch compositions, plans rebuilt exactly from the PlanSpec.
    for thread_row, process_row in zip(results["thread"][1], results["process"][1]):
        np.testing.assert_array_equal(thread_row, process_row)
    print(f"\nAll {len(stream)} logits identical across thread and process backends.")

    report, _, sharded = results["process"]
    hw = sharded.hardware_report(extract_layer_shapes(backbone), conv_only=True)
    print(
        f"Systolic-array estimate from the merged sharded schedule "
        f"({sharded.recorder.num_images()} images): total energy "
        f"{hw.total_energy().total:,.0f} units, {hw.total_cycles():,.0f} cycles"
    )


if __name__ == "__main__":
    main()
