"""DRAM storage analysis: how much memory does MIME save as child tasks accumulate?

Regenerates Figure 1 / Figure 4 of the paper: off-chip DRAM storage of
conventional multi-task inference (one fine-tuned VGG16 weight set per child
task) versus MIME ({W_parent, T_child-1, ..., T_child-n}), as a function of the
number of child tasks, and prints the parameter breakdown behind the curve.

Run with:  python examples/storage_analysis.py
"""

from __future__ import annotations

from repro.experiments.figures import figure4_dram_storage
from repro.experiments.report import render_table
from repro.mime.storage import StorageModel


def main() -> None:
    result = figure4_dram_storage(max_tasks=8)

    curve = result["curve"]
    rows = [
        [int(n), f"{conv:,.0f}", f"{mime:,.0f}", f"{ratio:.2f}x"]
        for n, conv, mime, ratio in zip(
            curve["num_tasks"], curve["conventional_mb"], curve["mime_mb"], curve["saving_ratio"]
        )
    ]
    print(render_table(
        ["child tasks", "conventional (MB)", "MIME (MB)", "saving"],
        rows,
        title="Fig. 1 / Fig. 4 — off-chip DRAM storage vs number of child tasks (16-bit parameters)",
    ))

    print()
    print("Breakdown for the paper's 3-child configuration:")
    conv = result["conventional_breakdown"]
    mime = result["mime_breakdown"]
    print(f"  conventional: parent weights {conv['parent_params']:,} + "
          + " + ".join(f"{task} {params:,}" for task, params in conv["per_task_params"].items()))
    print(f"  MIME        : parent weights {mime['parent_params']:,} + "
          + " + ".join(f"{task} {params:,}" for task, params in mime["per_task_params"].items()))
    print(f"  saving: {result['saving_ratio_3_tasks']:.2f}x (paper reports ~{result['paper_saving_ratio']}x)")

    # Sensitivity: count thresholds only on convolutional layers.
    conv_only = figure4_dram_storage(storage_model=StorageModel(threshold_layers="conv"))
    print(f"  saving with conv-only thresholds: {conv_only['saving_ratio_3_tasks']:.2f}x")


if __name__ == "__main__":
    main()
