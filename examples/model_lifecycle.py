"""Model lifecycle: export a versioned artifact, hot-swap it into a live
fleet, and let the online recalibration loop keep it honest.

The full deployment story in one script:

1. build and compile a multi-task MIME network, calibrate per-channel
   survival, specialize per-task plans, and publish everything as version
   ``v001`` of a :class:`~repro.artifacts.ModelStore` (hash-verified,
   schema-versioned bundles — exactly what ``repro export`` does);
2. start a **process-sharded** serving fleet on the plain dense plan and put
   it under load;
3. hot-swap the live fleet to the published artifact with
   :meth:`~repro.serving.BaseRuntime.swap` — intake pauses, in-flight
   batches drain on the old plans, every shard rebuilds from the shipped
   :class:`~repro.engine.PlanSpec` and acks, and not a single request fails;
4. verify post-swap logits are bit-identical to a cold start from the same
   artifact;
5. run a :class:`~repro.serving.RecalibrationLoop` against drifted traffic:
   it watches live per-channel survival, re-specializes from what traffic
   actually looks like, hot-swaps the result, and publishes it as ``v002``.

Run with:  python examples/model_lifecycle.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.artifacts import ModelArtifact, ModelStore
from repro.engine import (
    SparsityRecorder,
    calibrate_plan,
    compile_network,
    specialize_tasks,
)
from repro.mime import MimeNetwork, add_structured_sparsity_task
from repro.models import vgg_tiny
from repro.serving import RecalibrationLoop, ServingRuntime, ShardedRuntime

TASKS = ("news", "photos", "maps")
MICRO_BATCH = 8
REQUESTS_PER_TASK = 32  # multiple of MICRO_BATCH: deterministic batching


def build_plan(rng: np.random.Generator):
    backbone = vgg_tiny(num_classes=8, input_size=16, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for name in TASKS:
        add_structured_sparsity_task(
            network, name, num_classes=10, rng=rng, dead_fraction=0.4, threshold_jitter=0.2
        )
    return compile_network(network, dtype=np.float32)


def main() -> None:
    rng = np.random.default_rng(7)
    plan = build_plan(rng)

    # -- 1. export: calibrate, specialize, publish ---------------------------
    profile = calibrate_plan(plan, batch_size=32, seed=7)
    specialized = specialize_tasks(plan, profile=profile)
    artifact = ModelArtifact.from_plans(
        "lifecycle-demo", plan, specialized, calibration=profile
    )
    store_dir = tempfile.mkdtemp(prefix="mime-store-")
    store = ModelStore(store_dir)
    version = store.publish(artifact)
    manifest = store.verify(version)
    print(f"published '{artifact.name}' as {version} under {store_dir}")
    print(f"  {len(manifest['files'])} hash-verified files, latest -> {store.latest()}")

    # -- 2-4. live hot-swap on the sharded fleet -----------------------------
    runtime = ShardedRuntime(plan, micro_batch=MICRO_BATCH, max_wait=5.0, workers=2)
    stream = [
        (task, rng.normal(size=plan.input_shape))
        for _ in range(REQUESTS_PER_TASK)
        for task in TASKS
    ]
    before = [runtime.submit(task, image) for task, image in stream]
    runtime.start()
    runtime.swap(store.load(), timeout=120.0)  # mid-drain: zero dropped requests
    after = [runtime.submit(task, image) for task, image in stream]
    report = runtime.stop(drain=True)
    print(f"\nhot-swap under load: {report.completed} served, {report.errors} errors")

    cold_plan, cold_specialized = store.load().build_plans()
    groups: dict = {}
    for future, (task, image) in zip(after, stream):
        groups.setdefault(task, ([], []))
        groups[task][0].append(future.result(timeout=0))
        groups[task][1].append(image)
    for task, (rows, images) in groups.items():
        for start in range(0, len(rows), MICRO_BATCH):
            batch = np.stack(images[start : start + MICRO_BATCH])
            reference = cold_specialized[task].run(batch, task)
            np.testing.assert_array_equal(np.stack(rows[start : start + MICRO_BATCH]), reference)
    del cold_plan
    print("post-swap logits are bit-identical to a cold start from the artifact")

    # -- 5. online recalibration on drifted traffic --------------------------
    recal_runtime = ServingRuntime(
        plan,
        micro_batch=MICRO_BATCH,
        max_wait=0.002,
        workers=2,
        recorder=SparsityRecorder(channel_tracking=True),
        specialized=dict(specialized),
    )
    with recal_runtime:
        loop = RecalibrationLoop(
            recal_runtime, profile, drift_threshold=0.2, min_images=32, store=store
        )
        drifted = [0.01 * rng.normal(size=plan.input_shape) for _ in range(32)]
        futures = [
            recal_runtime.submit(task, image) for task in TASKS for image in drifted
        ]
        for future in futures:
            future.result(timeout=60.0)
        event = loop.check_once()
    print(f"\nrecalibration: drift {event.drift.max_rate_delta:.3f}, "
          f"{event.drift.flipped_channels} flipped channels")
    print(f"  {event.reason}")
    print(f"  store now holds versions {store.versions()}, latest -> {store.latest()}")


if __name__ == "__main__":
    main()
