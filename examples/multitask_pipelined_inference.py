"""Multi-task pipelined inference: one backbone, three child tasks, interleaved inputs.

Reproduces the paper's Pipelined task mode scenario end to end on the
surrogate workload: a single frozen parent backbone serves CIFAR10-, CIFAR100-
and Fashion-MNIST-style tasks whose inputs arrive interleaved, switching only
the per-task thresholds (and tiny heads) between consecutive images.  The
script then feeds the *measured* activation sparsities into the systolic-array
model to show the resulting energy advantage over conventional per-task models.

Run with:  python examples/multitask_pipelined_inference.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import DataLoader, PipelinedTaskStream, build_child_tasks, imagenet_surrogate
from repro.baselines import train_parent
from repro.hardware import (
    SystolicArraySimulator,
    case2_config,
    mime_config,
    pipelined_task_schedule,
)
from repro.mime import MimeNetwork, ThresholdTrainer, average_sparsity_over_loader
from repro.models import vgg_small


def main() -> None:
    rng = np.random.default_rng(1)

    # Parent backbone shared by every child task.
    parent_task = imagenet_surrogate(scale=0.5, backbone_size=32, samples_per_class=25)
    parent = vgg_small(num_classes=parent_task.num_classes, input_size=32, rng=rng)
    print("Training the shared parent backbone ...")
    train_parent(parent, parent_task, epochs=5, batch_size=32, rng=rng)

    # Three child tasks with their own thresholds on the frozen backbone.
    children = build_child_tasks(scale=0.6, backbone_size=32, samples_per_class=30)
    network = MimeNetwork(parent)
    trainer = ThresholdTrainer(network, lr=1e-3, beta=1e-6)
    sparsity_profile = {}
    for task in children:
        network.add_task(task.name, task.num_classes, rng=rng)
        print(f"Training thresholds for child task '{task.name}' ...")
        trainer.train_task(task.name, DataLoader(task.train, batch_size=32, shuffle=True, rng=rng), epochs=8)
        _, accuracy = trainer.evaluate(task.name, DataLoader(task.test, batch_size=64))
        report = average_sparsity_over_loader(
            network, DataLoader(task.test, batch_size=64), task=task.name
        )
        sparsity_profile[task.name] = report.per_layer
        print(f"  accuracy {accuracy:.3f}, mean dynamic sparsity {report.mean:.3f}")

    # Pipelined inference: consecutive images belong to different tasks.
    print("\nPipelined task mode inference (task switches between consecutive images):")
    stream = PipelinedTaskStream(children, rounds=2, rng=rng)
    correct = 0
    total = 0
    for batch in stream:
        logits = network.forward(batch.images, task=batch.task_name)
        predicted = int(np.argmax(logits, axis=1)[0])
        correct += int(predicted == batch.labels[0])
        total += 1
        print(f"  image from {batch.task_name:<9} -> predicted class {predicted} (true {batch.labels[0]})")
    print(f"  pipelined batch accuracy: {correct}/{total}")

    # Hardware consequence: project the *measured* mean dynamic sparsity of each
    # task onto the paper's VGG16 geometry and compare the pipelined-batch
    # energy against conventional per-task models (ReLU-level sparsity).
    from repro.experiments.figures import paper_vgg16_shapes
    from repro.hardware.scenario import LayerSparsityProfile

    shapes = paper_vgg16_shapes()
    schedule = pipelined_task_schedule([task.name for task in children])
    measured_mean = {
        task: float(np.mean(list(layers.values()))) for task, layers in sparsity_profile.items()
    }
    mime_profile = LayerSparsityProfile(
        per_task={
            task: {shape.name: value for shape in shapes}
            for task, value in measured_mean.items()
        }
    )
    # Conventional baselines owe their sparsity to ReLU alone (~0.4-0.5 typical).
    baseline_profile = LayerSparsityProfile.uniform(list(measured_mean), 0.40)

    simulator = SystolicArraySimulator()
    baseline = simulator.run(shapes, schedule, baseline_profile, case2_config(), conv_only=True)
    mime = simulator.run(shapes, schedule, mime_profile, mime_config(), conv_only=True)
    saving = baseline.total_energy().total / mime.total_energy().total
    print(
        "\nProjected onto the paper's VGG16 geometry, the pipelined batch costs "
        f"{baseline.total_energy().total:,.0f} (conventional, zero-skipping) vs "
        f"{mime.total_energy().total:,.0f} (MIME) MAC-normalised energy units — a x{saving:.2f} saving."
    )


if __name__ == "__main__":
    main()
