"""Quickstart: train MIME thresholds for one child task on a frozen parent backbone.

This walks the paper's core algorithm end to end in about a minute on CPU:

1. train a small parent backbone on the parent-task surrogate (stand-in for
   VGG16 / ImageNet);
2. freeze the parent weights and learn per-neuron thresholds for a child task
   (stand-in for CIFAR10);
3. report the child-task accuracy and the layerwise dynamic neuronal sparsity
   that the thresholds induce.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import train_parent
from repro.datasets import DataLoader, cifar10_surrogate, imagenet_surrogate
from repro.mime import MimeNetwork, ThresholdTrainer
from repro.models import vgg_small


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------ parent --
    parent_task = imagenet_surrogate(scale=0.5, backbone_size=32, samples_per_class=30)
    parent = vgg_small(num_classes=parent_task.num_classes, input_size=32, rng=rng)
    print(f"Training parent backbone on '{parent_task.name}' ({parent_task.num_classes} classes) ...")
    _, parent_accuracy = train_parent(parent, parent_task, epochs=6, batch_size=32, rng=rng)
    print(f"  parent test accuracy: {parent_accuracy:.3f}")

    # --------------------------------------------------------------- child task --
    child_task = cifar10_surrogate(scale=1.0, backbone_size=32, samples_per_class=40)
    network = MimeNetwork(parent, init_threshold=0.05)
    network.add_task(child_task.name, child_task.num_classes, rng=rng)

    trainer = ThresholdTrainer(network, lr=1e-3, beta=1e-6)
    train_loader = DataLoader(child_task.train, batch_size=32, shuffle=True, rng=rng)
    test_loader = DataLoader(child_task.test, batch_size=64)

    print(f"Training MIME thresholds for '{child_task.name}' (parent weights frozen) ...")
    history = trainer.train_task(child_task.name, train_loader, epochs=10)
    _, accuracy = trainer.evaluate(child_task.name, test_loader)

    print(f"  final train accuracy: {history.train_accuracy[-1]:.3f}")
    print(f"  child test accuracy : {accuracy:.3f}")

    # -------------------------------------------------------------- sparsity ----
    print("Layerwise dynamic neuronal sparsity (Table II analogue):")
    network.set_active_task(child_task.name)
    network.forward(child_task.test.images[:64])
    for layer, sparsity in network.sparsity_by_layer().items():
        print(f"  {layer:>6}: {sparsity:.3f}")

    thresholds = network.num_threshold_parameters()
    parent_params = network.parent_parameter_count()
    print(
        f"Per-task storage: {thresholds:,} thresholds vs {parent_params:,} shared parent weights "
        f"({thresholds / parent_params:.1%} of the parent)"
    )


if __name__ == "__main__":
    main()
