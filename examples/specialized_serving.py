"""Per-task plan specialization: calibrate, compact, serve, count MACs.

Builds a multi-task MIME network whose child tasks structurally kill a
different ~60% of every masked layer's channels (the paper's per-task
structured sparsity), then:

1. calibrates per-channel survival on the compiled dense plan,
2. specializes one compacted plan per task (dead-channel elimination with
   the shrinkage propagated through im2col rows and the FC head),
3. serves the same mixed-task traffic through the dense and the specialized
   plans under a 4-worker :class:`~repro.serving.ServingRuntime`, and
4. reports throughput, effective MACs and the systolic-array estimate fed by
   the measured schedule.

Run with:  PYTHONPATH=src python examples/specialized_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.engine import calibrate_plan, compile_network, specialize_tasks
from repro.mime import MimeNetwork, add_structured_sparsity_task
from repro.models import extract_layer_shapes, vgg_small
from repro.serving import LoadGenerator, ServingRuntime

TASKS = ("cifar10", "cifar100", "fmnist")
INPUT_SIZE = 32
DEAD_FRACTION = 0.6
NUM_REQUESTS = 192


def build_network(rng: np.random.Generator) -> MimeNetwork:
    backbone = vgg_small(num_classes=8, input_size=INPUT_SIZE, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for index, name in enumerate(TASKS):
        # A different structurally-dead channel subset per task: those
        # thresholds exceed any attainable pre-activation, so the channels
        # never fire for this task on any input.
        add_structured_sparsity_task(
            network, name, num_classes=10 + index, rng=rng,
            dead_fraction=DEAD_FRACTION, threshold_jitter=0.2,
        )
    return network


def serve(plan, specialized, images, trace) -> tuple[float, float]:
    runtime = ServingRuntime(
        plan, policy="fifo-deadline", micro_batch=8, max_wait=0.005,
        workers=4, specialized=specialized,
    )
    generator = LoadGenerator.uniform(TASKS, rate=2000.0)
    futures = generator.replay(
        runtime, images, num_requests=len(trace), time_scale=0.0, trace=trace
    )
    runtime.start()
    report = runtime.stop(drain=True)
    for future in futures:
        future.result(timeout=0)
    return report.throughput, runtime.recorder.mac_reduction()


def main() -> None:
    rng = np.random.default_rng(11)
    network = build_network(rng)
    plan = compile_network(network, dtype=np.float32)

    profile = calibrate_plan(plan, batch_size=32, seed=5)
    print("calibrated dead channels per task (survival rate 0 during calibration):")
    for task in TASKS:
        dead = {layer: profile.dead_channels(task, layer) for layer in profile.layers(task)}
        print(f"  {task}: {dead}")

    specialized = specialize_tasks(plan, profile=profile)
    for task in TASKS:
        spec = specialized[task]
        print(
            f"specialized plan for {task}: "
            f"{sum(spec.dead_channel_counts().values())} channels eliminated, "
            f"{100.0 * spec.mac_reduction():.1f}% of dense MACs avoided per image"
        )

    images = {task: rng.normal(size=(16, 3, INPUT_SIZE, INPUT_SIZE)) for task in TASKS}
    trace = LoadGenerator.uniform(TASKS, rate=2000.0, seed=13).trace(NUM_REQUESTS)

    dense_tput, _ = serve(plan, {}, images, trace)
    spec_tput, mac_reduction = serve(plan, specialized, images, trace)
    print(f"\n4-worker serving drain of {NUM_REQUESTS} mixed-task requests:")
    print(f"  dense plan       : {dense_tput:8.1f} images/sec")
    print(f"  specialized plans: {spec_tput:8.1f} images/sec "
          f"({spec_tput / dense_tput:.2f}x, {100.0 * mac_reduction:.1f}% MACs avoided)")

    # The measured schedule + sparsity drive the hardware model, with the
    # engine-side MAC counts attached to the scenario report.
    runtime = ServingRuntime(plan, workers=2, micro_batch=8, specialized=specialized)
    with runtime:
        futures = [
            runtime.submit(TASKS[i % len(TASKS)], images[TASKS[i % len(TASKS)]][i % 16])
            for i in range(48)
        ]
        for future in futures:
            future.result(timeout=30.0)
    report = runtime.hardware_report(extract_layer_shapes(network.backbone), conv_only=True)
    print("\nsystolic-array estimate over the measured online schedule:")
    print(f"  total energy {report.total_energy().total:,.0f} units, "
          f"{report.total_cycles():,.0f} cycles")
    print(f"  engine-side effective MACs: {report.measured_effective_macs:,} of "
          f"{report.measured_dense_macs:,} dense "
          f"({100.0 * report.measured_mac_reduction():.1f}% avoided)")


if __name__ == "__main__":
    main()
